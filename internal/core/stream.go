package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/obs"
)

// The streaming execution path. MapReads materializes every read
// before mapping, so resident memory grows with the dataset;
// MapReadsFrom instead pulls reads from a fastq.Source through a
// bounded producer/consumer pipeline whose footprint is fixed by
// configuration:
//
//   - one reader goroutine fills fixed-size batches (Config.Batch
//     reads each) and sends them into a work channel bounded at
//     Config.Queue batches;
//   - batch buffers are recycled through a free list of exactly
//     (Queue + Workers) buffers, so the producer blocks — backpressure
//     on the input stream — once every buffer is filled or being
//     mapped. Resident reads never exceed (Queue + Workers) · Batch;
//   - the existing mapper worker pool drains the queue, each worker
//     reusing its zero-allocation scratch state across batches;
//   - the first failure (worker or source) latches the error and a
//     stop signal: workers stop picking up batches, the producer stops
//     reading, and MapReadsFrom returns the first error.
//
// See DESIGN.md §10 for the invariants and the observability hooks.

// streamMetrics pre-resolves the streaming pipeline's gauges and
// counters (nil when observability is off):
//
//	stream.queue.depth        gauge: batches waiting in the work queue
//	stream.peak.resident.reads gauge: high-water mark of reads held in
//	                           batch buffers (the memory-bound witness)
//	stream.batches            counter: batches produced
//	stream.reads              counter: reads streamed through
type streamMetrics struct {
	queueDepth   *obs.Gauge
	peakResident *obs.Gauge
	batches      *obs.Counter
	reads        *obs.Counter
}

func newStreamMetrics(reg *obs.Registry) *streamMetrics {
	if reg == nil {
		return nil
	}
	return &streamMetrics{
		queueDepth:   reg.Gauge("stream.queue.depth"),
		peakResident: reg.Gauge("stream.peak.resident.reads"),
		batches:      reg.Counter("stream.batches"),
		reads:        reg.Counter("stream.reads"),
	}
}

// readBatch is one recycled unit of streaming work. Only the slice
// header is reused; the reads themselves are owned by the garbage
// collector once their batch has been mapped.
type readBatch struct {
	reads []*fastq.Read
}

// MapReadsFrom maps every read src yields, accumulating online into
// acc exactly as MapReads does, while holding at most
// (Queue + Workers) · Batch reads in memory. Accumulator index 0
// corresponds to global position accOffset.
//
// The result is call-identical to MapReads over the materialized
// stream: same Stats, same accumulated mass (up to the float
// accumulation-order tolerance the worker pool already has).
func (e *Engine) MapReadsFrom(src fastq.Source, acc genome.Accumulator, accOffset int) (Stats, error) {
	var st Stats
	if acc == nil {
		return st, fmt.Errorf("core: nil accumulator")
	}
	if src == nil {
		return st, fmt.Errorf("core: nil read source")
	}
	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	batchSz := e.cfg.Batch
	if batchSz < 1 {
		batchSz = 64
	}
	queue := e.cfg.Queue
	if queue < 1 {
		queue = 4
	}
	sm := newStreamMetrics(e.cfg.Metrics)

	// The free list is the memory bound: (queue + workers) buffers in
	// total, so at most `queue` batches can wait in the work channel
	// while every worker holds one.
	nbuf := queue + workers
	free := make(chan *readBatch, nbuf)
	for i := 0; i < nbuf; i++ {
		free <- &readBatch{reads: make([]*fastq.Read, 0, batchSz)}
	}
	work := make(chan *readBatch, queue)
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	var errMu sync.Mutex
	var firstErr error
	latch := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stopCh) })
	}
	var resident, peak atomic.Int64

	// Producer: fill batches from the source until EOF, error, or stop.
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		defer close(work)
		for {
			var b *readBatch
			select {
			case b = <-free:
			case <-stopCh:
				return
			}
			b.reads = b.reads[:0]
			var srcErr error
			for len(b.reads) < batchSz {
				rd, err := src.Next()
				if err != nil {
					srcErr = err
					break
				}
				b.reads = append(b.reads, rd)
			}
			if n := len(b.reads); n > 0 {
				r := resident.Add(int64(n))
				for {
					p := peak.Load()
					if r <= p || peak.CompareAndSwap(p, r) {
						break
					}
				}
				if sm != nil {
					sm.reads.Add(int64(n))
					sm.batches.Inc()
					sm.peakResident.Set(float64(peak.Load()))
				}
				select {
				case work <- b:
					if sm != nil {
						sm.queueDepth.Set(float64(len(work)))
					}
				case <-stopCh:
					return
				}
			}
			if srcErr != nil {
				if srcErr != io.EOF {
					latch(fmt.Errorf("core: read source: %w", srcErr))
				}
				return
			}
		}
	}()

	// Workers: drain the queue until it closes or an error latches.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := e.newMapper()
			if err != nil {
				latch(err)
				return
			}
			target := workerTarget(acc)
			for b := range work {
				select {
				case <-stopCh:
					// Error latched elsewhere: stop picking up batches.
					return
				default:
				}
				if sm != nil {
					sm.queueDepth.Set(float64(len(work)))
				}
				for _, rd := range b.reads {
					if err := m.consumeRead(rd, target, accOffset, &st); err != nil {
						latch(err)
						return
					}
				}
				resident.Add(-int64(len(b.reads)))
				b.reads = b.reads[:0]
				free <- b
			}
		}()
	}
	wg.Wait()
	prodWG.Wait()
	if sm != nil {
		sm.queueDepth.Set(0)
		sm.peakResident.Set(float64(peak.Load()))
	}
	return st, firstErr
}
