package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/obs"
)

// The streaming execution path. MapReads materializes every read
// before mapping, so resident memory grows with the dataset;
// MapReadsFrom instead pulls reads from a fastq.Source through a
// bounded producer/consumer pipeline whose footprint is fixed by
// configuration:
//
//   - one reader goroutine fills fixed-size batches (Config.Batch
//     reads each) and sends them into a work channel bounded at
//     Config.Queue batches;
//   - batch buffers are recycled through a free list of exactly
//     (Queue + Workers) buffers, so the producer blocks — backpressure
//     on the input stream — once every buffer is filled or being
//     mapped. Resident reads never exceed (Queue + Workers) · Batch;
//   - the existing mapper worker pool drains the queue, each worker
//     reusing its zero-allocation scratch state across batches;
//   - the first failure (worker or source) latches the error and a
//     stop signal: workers stop picking up batches, the producer stops
//     reading, and MapReadsFrom returns the first error.
//
// See DESIGN.md §10 for the invariants and the observability hooks.

// streamMetrics pre-resolves the streaming pipeline's gauges and
// counters (nil when observability is off):
//
//	stream.queue.depth        gauge: batches waiting in the work queue
//	stream.peak.resident.reads gauge: high-water mark of reads held in
//	                           batch buffers (the memory-bound witness)
//	stream.batches            counter: batches produced
//	stream.reads              counter: reads streamed through
type streamMetrics struct {
	queueDepth   *obs.Gauge
	peakResident *obs.Gauge
	batches      *obs.Counter
	reads        *obs.Counter
	ckptStall    *obs.Histogram
}

func newStreamMetrics(reg *obs.Registry) *streamMetrics {
	if reg == nil {
		return nil
	}
	return &streamMetrics{
		queueDepth:   reg.Gauge("stream.queue.depth"),
		peakResident: reg.Gauge("stream.peak.resident.reads"),
		batches:      reg.Counter("stream.batches"),
		reads:        reg.Counter("stream.reads"),
		// ckptStall observes, per checkpoint, the window where the whole
		// pipeline is idle: quiesce complete (every worker parked) through
		// snapshot and sink return. The drain before it is productive —
		// workers are mapping queued batches — so this, not wall-clock
		// differencing, is the checkpoint feature's added critical-path
		// time.
		ckptStall: reg.Timer("stream.ckpt.stall.seconds"),
	}
}

// readBatch is one recycled unit of streaming work. Only the slice
// header is reused; the reads themselves are owned by the garbage
// collector once their batch has been mapped.
type readBatch struct {
	reads []*fastq.Read
}

// ErrStopped is returned by MapReadsFromCkpt after a cooperative stop:
// the pipeline drained, the final checkpoint sink ran, and mapping
// ended early by request rather than by error or end of input.
var ErrStopped = errors.New("core: stop requested; run state checkpointed")

// ErrCkptBarrier is a sentinel a fastq.Source may return to request an
// out-of-band quiesce + checkpoint instead of more reads. The streaming
// pipeline drains in-flight batches, runs the checkpoint sink, and then
// resumes pulling from the source. The cluster dealing protocol uses it
// to propagate rank 0's checkpoint rounds into each rank's local
// pipeline; it is not an error and never escapes MapReadsFromCkpt.
var ErrCkptBarrier = errors.New("core: checkpoint barrier")

// CheckpointPolicy makes MapReadsFromCkpt periodically quiesce the
// pipeline and hand a consistent snapshot to Sink.
type CheckpointPolicy struct {
	// EveryReads triggers a checkpoint each time this many reads have
	// been consumed since the last one (0 = no read-count trigger).
	EveryReads int64
	// Every triggers a checkpoint when this much wall time has passed
	// since the last one (0 = no time trigger). Both triggers may be
	// set; whichever fires first wins.
	Every time.Duration
	// Sink receives each snapshot: reads consumed from the source so
	// far THIS RUN, the mapping stats so far this run, and the
	// serialized accumulator state (which includes any state loaded
	// before the run). A Sink error aborts the pipeline.
	Sink func(consumed int64, st Stats, state []byte) error
	// StopRequested, when non-nil, is polled between batches; returning
	// true drains the pipeline, runs a final Sink, and makes
	// MapReadsFromCkpt return ErrStopped.
	StopRequested func() bool
	// Quiesced, when non-nil, runs at every checkpoint barrier while
	// the pipeline is still parked — the work queue drained, every
	// worker idle, every accumulator write visible — and before the
	// pipeline resumes. The incremental caller hangs its per-region
	// sweep here. An error aborts the pipeline. A policy with only
	// Quiesced set (no Sink) still quiesces on the usual triggers; the
	// durable-state snapshot is skipped.
	Quiesced func(consumed int64) error
}

// MapReadsFrom maps every read src yields, accumulating online into
// acc exactly as MapReads does, while holding at most
// (Queue + Workers) · Batch reads in memory. Accumulator index 0
// corresponds to global position accOffset.
//
// The result is call-identical to MapReads over the materialized
// stream: same Stats, same accumulated mass (up to the float
// accumulation-order tolerance the worker pool already has).
func (e *Engine) MapReadsFrom(src fastq.Source, acc genome.Accumulator, accOffset int) (Stats, error) {
	return e.MapReadsFromCkpt(src, acc, accOffset, nil)
}

// MapReadsFromCkpt is MapReadsFrom with a checkpoint policy: every
// EveryReads reads / Every wall time (or when the source returns
// ErrCkptBarrier) the producer quiesces the pipeline — it collects all
// (Queue + Workers) recycled buffers from the free list, which can only
// succeed once the work queue is empty and every worker has finished
// its batch, so the channel handoffs give the producer a happens-before
// edge over every accumulator write — snapshots the stats and
// accumulator state, hands them to policy.Sink, and resumes. A nil
// policy makes it exactly MapReadsFrom.
func (e *Engine) MapReadsFromCkpt(src fastq.Source, acc genome.Accumulator, accOffset int, policy *CheckpointPolicy) (Stats, error) {
	var st Stats
	if acc == nil {
		return st, fmt.Errorf("core: nil accumulator")
	}
	if src == nil {
		return st, fmt.Errorf("core: nil read source")
	}
	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	batchSz := e.cfg.Batch
	if batchSz < 1 {
		batchSz = 64
	}
	queue := e.cfg.Queue
	if queue < 1 {
		queue = 4
	}
	sm := newStreamMetrics(e.cfg.Metrics)

	// The free list is the memory bound: (queue + workers) buffers in
	// total, so at most `queue` batches can wait in the work channel
	// while every worker holds one.
	nbuf := queue + workers
	free := make(chan *readBatch, nbuf)
	for i := 0; i < nbuf; i++ {
		free <- &readBatch{reads: make([]*fastq.Read, 0, batchSz)}
	}
	work := make(chan *readBatch, queue)
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	var errMu sync.Mutex
	var firstErr error
	latch := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stopCh) })
	}
	var resident, peak atomic.Int64

	// Producer: fill batches from the source until EOF, error, or stop,
	// quiescing for a checkpoint whenever the policy (or a source
	// barrier) asks for one.
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		defer close(work)
		var consumed, sinceCkpt int64
		lastCkpt := time.Now()
		held := make([]*readBatch, 0, nbuf)
		release := func() {
			for _, hb := range held {
				free <- hb
			}
			held = held[:0]
		}
		// quiesce collects every recycled buffer: possible only once the
		// work queue is empty and all workers are idle between batches.
		quiesce := func() bool {
			for len(held) < nbuf {
				select {
				case hb := <-free:
					held = append(held, hb)
				case <-stopCh:
					release()
					return false
				}
			}
			return true
		}
		// checkpoint quiesces, snapshots (stats + accumulator state),
		// runs the sink, and resumes the pipeline. False aborts the run.
		checkpoint := func() bool {
			if policy == nil || (policy.Sink == nil && policy.Quiesced == nil) {
				return true
			}
			if !quiesce() {
				return false
			}
			stallStart := time.Now()
			snap := Stats{
				Mapped:    atomic.LoadInt64(&st.Mapped),
				Unmapped:  atomic.LoadInt64(&st.Unmapped),
				Locations: atomic.LoadInt64(&st.Locations),
			}
			var state []byte
			var err error
			if policy.Sink != nil {
				state, err = genome.SnapshotState(acc)
			}
			if err == nil && policy.Quiesced != nil {
				// Must run before release(): the hook reads the
				// accumulator and needs the quiesced view.
				if qerr := policy.Quiesced(consumed); qerr != nil {
					err = fmt.Errorf("core: quiesced hook: %w", qerr)
				}
			}
			release()
			if err != nil {
				latch(err)
				return false
			}
			if policy.Sink != nil {
				if err := policy.Sink(consumed, snap, state); err != nil {
					latch(fmt.Errorf("core: checkpoint sink: %w", err))
					return false
				}
			}
			if sm != nil {
				sm.ckptStall.ObserveDuration(time.Since(stallStart))
			}
			sinceCkpt = 0
			lastCkpt = time.Now()
			return true
		}
		for {
			if policy != nil && policy.StopRequested != nil && policy.StopRequested() {
				if checkpoint() {
					latch(ErrStopped)
				}
				return
			}
			var b *readBatch
			select {
			case b = <-free:
			case <-stopCh:
				return
			}
			b.reads = b.reads[:0]
			var srcErr error
			for len(b.reads) < batchSz {
				rd, err := src.Next()
				if err != nil {
					srcErr = err
					break
				}
				b.reads = append(b.reads, rd)
			}
			barrier := errors.Is(srcErr, ErrCkptBarrier)
			if n := len(b.reads); n > 0 {
				r := resident.Add(int64(n))
				for {
					p := peak.Load()
					if r <= p || peak.CompareAndSwap(p, r) {
						break
					}
				}
				if sm != nil {
					sm.reads.Add(int64(n))
					sm.batches.Inc()
					sm.peakResident.Set(float64(peak.Load()))
				}
				select {
				case work <- b:
					if sm != nil {
						sm.queueDepth.Set(float64(len(work)))
					}
				case <-stopCh:
					return
				}
				consumed += int64(n)
				sinceCkpt += int64(n)
			} else {
				// Unused buffer goes straight back so quiesce can count it.
				free <- b
			}
			if barrier {
				if !checkpoint() {
					return
				}
				continue
			}
			if srcErr != nil {
				if srcErr != io.EOF {
					latch(fmt.Errorf("core: read source: %w", srcErr))
				}
				return
			}
			if policy != nil &&
				((policy.EveryReads > 0 && sinceCkpt >= policy.EveryReads) ||
					(policy.Every > 0 && time.Since(lastCkpt) >= policy.Every)) {
				if !checkpoint() {
					return
				}
			}
		}
	}()

	// Workers: drain the queue until it closes or an error latches.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := e.newMapper()
			if err != nil {
				latch(err)
				return
			}
			target := workerTarget(acc)
			for b := range work {
				select {
				case <-stopCh:
					// Error latched elsewhere: stop picking up batches.
					return
				default:
				}
				if sm != nil {
					sm.queueDepth.Set(float64(len(work)))
				}
				for _, rd := range b.reads {
					if err := m.consumeRead(rd, target, accOffset, &st); err != nil {
						latch(err)
						return
					}
				}
				resident.Add(-int64(len(b.reads)))
				b.reads = b.reads[:0]
				free <- b
			}
		}()
	}
	wg.Wait()
	prodWG.Wait()
	if sm != nil {
		sm.queueDepth.Set(0)
		sm.peakResident.Set(float64(peak.Load()))
	}
	return st, firstErr
}
