package core

import (
	"fmt"

	"gnumap/internal/fastq"
	"gnumap/internal/phmm"
	"gnumap/internal/pwm"
)

// CollectTrainingPairs maps reads and returns (PWM, window) training
// pairs for Baum-Welch parameter estimation (phmm.Fit), keeping only
// confidently, uniquely mapped reads: a single location holding at
// least minWeight of the read's posterior mass. max bounds the number
// of pairs (0 = no bound). The returned windows alias the reference.
func (e *Engine) CollectTrainingPairs(reads []*fastq.Read, max int, minWeight float64) ([]phmm.TrainingPair, error) {
	if minWeight == 0 {
		minWeight = 0.99
	}
	if minWeight < 0.5 || minWeight > 1 {
		return nil, fmt.Errorf("core: training minWeight %g out of [0.5, 1]", minWeight)
	}
	m, err := e.newMapper()
	if err != nil {
		return nil, err
	}
	var pairs []phmm.TrainingPair
	for _, rd := range reads {
		if max > 0 && len(pairs) >= max {
			break
		}
		locs, err := m.mapRead(rd)
		if err != nil {
			return nil, err
		}
		if len(locs) == 0 {
			continue
		}
		ws := e.weights(locs, nil)
		best, bestW := -1, 0.0
		for i, w := range ws {
			if w > bestW {
				best, bestW = i, w
			}
		}
		if best < 0 || bestW < minWeight {
			continue
		}
		loc := locs[best]
		window, _ := e.ref.Window(loc.windowStart, loc.windowLen)
		if len(window) == 0 {
			continue
		}
		var x *pwm.Matrix
		if e.cfg.IgnoreQualities {
			x, err = pwm.FromSeqUniformError(rd.Seq, 0)
		} else {
			x, err = pwm.FromRead(rd)
		}
		if err != nil {
			continue
		}
		if loc.minus {
			x = x.ReverseComplement()
		}
		pairs = append(pairs, phmm.TrainingPair{X: x, Y: window})
	}
	return pairs, nil
}
