package core

import (
	"testing"

	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

// BenchmarkMapReadsEndToEnd measures whole-engine throughput on a
// 100 kbp dataset (the number EXPERIMENTS.md quotes as reads/s).
func BenchmarkMapReadsEndToEnd(b *testing.B) {
	g := makePipelineB(b, 100000, 9, 10, 91)
	eng, err := NewEngine(g.ref, Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, _ := genome.New(genome.Norm, g.ref.Len())
		if _, err := eng.MapReads(g.reads, acc, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkMapReadsStream is BenchmarkMapReadsEndToEnd through the
// bounded streaming pipeline — the reads/s gap between the two is the
// cost of streaming (batch hand-off, free-list recycling) and should
// stay within noise of the slice path.
func BenchmarkMapReadsStream(b *testing.B) {
	g := makePipelineB(b, 100000, 9, 10, 91)
	eng, err := NewEngine(g.ref, Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, _ := genome.New(genome.Norm, g.ref.Len())
		if _, err := eng.MapReadsFrom(fastq.SliceSource(g.reads), acc, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkMapReadSteadyState isolates the per-read mapping hot path on
// one warm mapper — the allocs/op column is the zero-allocation
// acceptance gate.
func BenchmarkMapReadSteadyState(b *testing.B) {
	g := makePipelineB(b, 30000, 4, 4, 91)
	eng, err := NewEngine(g.ref, Config{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := eng.newMapper()
	if err != nil {
		b.Fatal(err)
	}
	// Warmup grows the mapper's arenas to their high-water mark.
	for _, rd := range warmup(g.reads) {
		if _, err := m.mapRead(rd); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := g.reads[i%len(g.reads)]
		locs, err := m.mapRead(rd)
		if err != nil {
			b.Fatal(err)
		}
		m.wbuf = eng.weights(locs, m.wbuf)
	}
}

// BenchmarkMapReadFullKernel is the same hot path with banding disabled
// (Band: -1) — the ns/op ratio against BenchmarkMapReadSteadyState is
// the end-to-end win from the banded kernel.
func BenchmarkMapReadFullKernel(b *testing.B) {
	g := makePipelineB(b, 30000, 4, 4, 91)
	eng, err := NewEngine(g.ref, Config{Band: -1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := eng.newMapper()
	if err != nil {
		b.Fatal(err)
	}
	for _, rd := range g.reads {
		if _, err := m.mapRead(rd); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := g.reads[i%len(g.reads)]
		locs, err := m.mapRead(rd)
		if err != nil {
			b.Fatal(err)
		}
		m.wbuf = eng.weights(locs, m.wbuf)
	}
}

// warmup returns a read subset large enough to reach every scratch
// buffer's high-water mark without dominating benchmark setup time.
func warmup(reads []*fastq.Read) []*fastq.Read {
	if len(reads) > 400 {
		return reads[:400]
	}
	return reads
}
