package core

import (
	"testing"

	"gnumap/internal/genome"
)

// BenchmarkMapReadsEndToEnd measures whole-engine throughput on a
// 100 kbp dataset (the number EXPERIMENTS.md quotes as reads/s).
func BenchmarkMapReadsEndToEnd(b *testing.B) {
	g := makePipelineB(b, 100000, 9, 10, 91)
	eng, err := NewEngine(g.ref, Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, _ := genome.New(genome.Norm, g.ref.Len())
		if _, err := eng.MapReads(g.reads, acc, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}
