package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"gnumap/internal/cluster"
	"gnumap/internal/genome"
	"gnumap/internal/snp"
)

// sharedBaseline maps the pipeline's reads with the one-process engine.
func sharedBaseline(t *testing.T, p *pipeline, mode genome.Mode) genome.Accumulator {
	t.Helper()
	eng, err := NewEngine(p.ref, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(mode, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MapReads(p.reads, acc, 0); err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestReadSplitMatchesSharedMemory(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 41)
	want := sharedBaseline(t, p, genome.Norm)

	for _, nodes := range []int{1, 2, 4} {
		var got genome.Accumulator
		var mu sync.Mutex
		err := cluster.Run(nodes, cluster.Channels, func(c *cluster.Comm) error {
			acc, st, err := RunReadSplit(c, p.ref, p.reads, genome.Norm, Config{Workers: 1})
			if err != nil {
				return err
			}
			if st.Mapped+st.Unmapped != int64(len(p.reads)) {
				return fmt.Errorf("stats don't cover all reads: %+v", st)
			}
			if c.Rank() == 0 {
				mu.Lock()
				got = acc
				mu.Unlock()
			} else if acc != nil {
				return fmt.Errorf("non-root rank received an accumulator")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if got == nil {
			t.Fatalf("nodes=%d: no accumulator at root", nodes)
		}
		for pos := 0; pos < p.ref.Len(); pos += 501 {
			a, b := want.Total(pos), got.Total(pos)
			if math.Abs(a-b) > 1e-3*(1+a) {
				t.Fatalf("nodes=%d pos=%d: %v vs %v", nodes, pos, b, a)
			}
		}
	}
}

func TestReadSplitOverTCP(t *testing.T) {
	p := makePipeline(t, 15000, 2, 6, 43)
	want := sharedBaseline(t, p, genome.Norm)
	var got genome.Accumulator
	var mu sync.Mutex
	err := cluster.Run(3, cluster.TCP, func(c *cluster.Comm) error {
		acc, _, err := RunReadSplit(c, p.ref, p.reads, genome.Norm, Config{Workers: 1})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			got = acc
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < p.ref.Len(); pos += 301 {
		a, b := want.Total(pos), got.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos=%d: %v vs %v", pos, b, a)
		}
	}
}

func TestReadSplitDiscretizedModes(t *testing.T) {
	p := makePipeline(t, 15000, 2, 6, 47)
	for _, mode := range []genome.Mode{genome.CharDisc, genome.CentDisc} {
		want := sharedBaseline(t, p, mode)
		var got genome.Accumulator
		var mu sync.Mutex
		err := cluster.Run(2, cluster.Channels, func(c *cluster.Comm) error {
			acc, _, err := RunReadSplit(c, p.ref, p.reads, mode, Config{Workers: 1})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				got = acc
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Discretized modes accumulate rounding differences between the
		// merged and sequential orders; totals must still agree well.
		for pos := 0; pos < p.ref.Len(); pos += 401 {
			a, b := want.Total(pos), got.Total(pos)
			if math.Abs(a-b) > 0.05*(1+a) {
				t.Fatalf("%v pos=%d: merged %v vs sequential %v", mode, pos, b, a)
			}
		}
	}
}

// collectGenomeSplit runs genome-split mapping and stitches each node's
// slice back into one full-length accumulator for comparison.
func collectGenomeSplit(t *testing.T, p *pipeline, nodes int, kind cluster.TransportKind, cfg Config) genome.Accumulator {
	t.Helper()
	type part struct {
		lo, hi int
		acc    genome.Accumulator
	}
	parts := make([]part, nodes)
	var mu sync.Mutex
	err := cluster.Run(nodes, kind, func(c *cluster.Comm) error {
		acc, lo, hi, st, err := RunGenomeSplit(c, p.ref, p.reads, genome.Norm, cfg)
		if err != nil {
			return err
		}
		if st.Mapped+st.Unmapped != int64(len(p.reads)) {
			return fmt.Errorf("stats don't cover all reads: %+v", st)
		}
		mu.Lock()
		parts[c.Rank()] = part{lo: lo, hi: hi, acc: acc}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range parts {
		for pos := pt.lo; pos < pt.hi; pos++ {
			v := pt.acc.Vector(pos - pt.lo)
			full.AddRange(pos, []genome.Vec{v}, 1)
		}
	}
	return full
}

func TestGenomeSplitMatchesSharedMemory(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 53)
	want := sharedBaseline(t, p, genome.Norm)
	for _, nodes := range []int{1, 2, 4} {
		got := collectGenomeSplit(t, p, nodes, cluster.Channels, Config{Workers: 1})
		for pos := 0; pos < p.ref.Len(); pos += 251 {
			a, b := want.Total(pos), got.Total(pos)
			if math.Abs(a-b) > 1e-3*(1+a) {
				t.Fatalf("nodes=%d pos=%d: genome-split %v vs shared %v", nodes, pos, b, a)
			}
		}
	}
}

func TestGenomeSplitSNPsMatch(t *testing.T) {
	p := makePipeline(t, 30000, 4, 12, 59)
	want := sharedBaseline(t, p, genome.Norm)
	wantCalls, _, err := snp.CallAll(p.ref, want, snp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectGenomeSplit(t, p, 3, cluster.Channels, Config{Workers: 1})
	gotCalls, _, err := snp.CallAll(p.ref, got, snp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(wantCalls) != len(gotCalls) {
		t.Fatalf("%d calls vs %d", len(gotCalls), len(wantCalls))
	}
	for i := range wantCalls {
		if wantCalls[i].GlobalPos != gotCalls[i].GlobalPos || wantCalls[i].Allele != gotCalls[i].Allele {
			t.Fatalf("call %d differs: %+v vs %+v", i, gotCalls[i], wantCalls[i])
		}
	}
	m := snp.Evaluate(gotCalls, p.cat)
	if m.TP < 3 {
		t.Errorf("genome-split recovered %d/%d", m.TP, len(p.cat))
	}
}

func TestGenomeSplitBoundaryStraddlingReads(t *testing.T) {
	// A small genome with 4 nodes: slice boundaries every ~1250 bases;
	// plenty of reads straddle them, exercising the spill exchange.
	p := makePipeline(t, 5000, 1, 20, 61)
	want := sharedBaseline(t, p, genome.Norm)
	got := collectGenomeSplit(t, p, 4, cluster.Channels, Config{Workers: 1})
	// Check positions tightly around every boundary.
	for _, boundary := range []int{1250, 2500, 3750} {
		for pos := boundary - 70; pos < boundary+70; pos++ {
			if pos < 0 || pos >= p.ref.Len() {
				continue
			}
			a, b := want.Total(pos), got.Total(pos)
			if math.Abs(a-b) > 1e-3*(1+a) {
				t.Fatalf("boundary %d pos %d: genome-split %v vs shared %v", boundary, pos, b, a)
			}
		}
	}
}

func TestGenomeSplitTooManyNodes(t *testing.T) {
	p := makePipeline(t, 5000, 1, 2, 67)
	_ = p
	err := cluster.Run(3, cluster.Channels, func(c *cluster.Comm) error {
		tiny, err := genome.NewSingleContig("t", p.ref.Seq()[:2])
		if err != nil {
			return err
		}
		_, _, _, _, err = RunGenomeSplit(c, tiny, p.reads, genome.Norm, Config{})
		if err == nil {
			return fmt.Errorf("empty slice accepted")
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestOwnerOfConsistent(t *testing.T) {
	for _, tc := range []struct{ L, size int }{{100, 3}, {999, 7}, {5000, 4}, {10, 10}} {
		for pos := 0; pos < tc.L; pos++ {
			r := ownerOf(pos, tc.L, tc.size)
			lo, hi := GenomeSlice(tc.L, tc.size, r)
			if pos < lo || pos >= hi {
				t.Fatalf("ownerOf(%d, %d, %d) = %d, but slice is [%d,%d)", pos, tc.L, tc.size, r, lo, hi)
			}
		}
	}
}

func TestGenomeSliceCoversAll(t *testing.T) {
	for _, tc := range []struct{ L, size int }{{100, 3}, {101, 4}, {5, 5}} {
		prev := 0
		for r := 0; r < tc.size; r++ {
			lo, hi := GenomeSlice(tc.L, tc.size, r)
			if lo != prev {
				t.Fatalf("gap before rank %d: %d vs %d", r, lo, prev)
			}
			prev = hi
		}
		if prev != tc.L {
			t.Fatalf("slices end at %d, want %d", prev, tc.L)
		}
	}
}
