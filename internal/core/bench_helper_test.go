package core

import (
	"testing"

	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/simulate"
)

type pipelineB struct {
	ref   *genome.Reference
	reads []*fastq.Read
}

func makePipelineB(b *testing.B, length, nSNPs int, coverage float64, seed int64) *pipelineB {
	b.Helper()
	g, err := simulate.Genome(simulate.GenomeConfig{Length: length, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{Count: nSNPs, Seed: seed + 1})
	if err != nil {
		b.Fatal(err)
	}
	ind, err := simulate.Mutate(g, cat, false)
	if err != nil {
		b.Fatal(err)
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{Length: 62, Coverage: coverage, Seed: seed + 2})
	if err != nil {
		b.Fatal(err)
	}
	ref, err := genome.NewSingleContig("chrB", g)
	if err != nil {
		b.Fatal(err)
	}
	return &pipelineB{ref: ref, reads: reads}
}
