package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
)

func TestWriteAlignmentsEndToEnd(t *testing.T) {
	p := makePipeline(t, 20000, 1, 1, 71)
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built reads at known positions plus one garbage read.
	qual := make([]uint8, 62)
	for i := range qual {
		qual[i] = 30
	}
	fwd := &fastq.Read{Name: "fwd", Seq: p.ref.Seq()[5000:5062].Clone(), Qual: qual}
	rev := &fastq.Read{Name: "rev", Seq: p.ref.Seq()[7000:7062].ReverseComplement(), Qual: qual}
	junk := make(dna.Seq, 62)
	for i := range junk {
		junk[i] = dna.Code(i % 4)
	}
	garbage := &fastq.Read{Name: "junk", Seq: junk, Qual: qual}

	var buf bytes.Buffer
	if err := eng.WriteAlignments(&buf, []*fastq.Read{fwd, rev, garbage}, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@SQ\tSN:chrE\tLN:20000") {
		t.Errorf("header missing:\n%s", firstLines(out, 3))
	}
	recs := map[string][]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		recs[f[0]] = f
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	f := recs["fwd"]
	if f[2] != "chrE" || f[3] != "5001" || f[5] != "62M" {
		t.Errorf("fwd record wrong: %v", f)
	}
	if flag := mustInt(t, f[1]); flag != 0 {
		t.Errorf("fwd flag = %d", flag)
	}
	r := recs["rev"]
	if r[3] != "7001" || r[5] != "62M" {
		t.Errorf("rev record wrong: %v", r)
	}
	if flag := mustInt(t, r[1]); flag&0x10 == 0 {
		t.Errorf("rev flag = %d, want reverse bit", flag)
	}
	// The reverse record's SEQ must be in reference orientation.
	if r[9] != p.ref.Seq()[7000:7062].String() {
		t.Errorf("rev SEQ not in reference orientation")
	}
	j := recs["junk"]
	if flag := mustInt(t, j[1]); flag&0x4 == 0 {
		t.Errorf("junk flag = %d, want unmapped bit", flag)
	}
	// Unique alignments get high mapping quality.
	if q := mustInt(t, f[4]); q < 30 {
		t.Errorf("fwd MapQ = %d, want high", q)
	}
}

func TestWriteAlignmentsMultiMapLowMapQ(t *testing.T) {
	p := makePipeline(t, 10000, 1, 1, 73)
	g := p.ref.Seq()
	copy(g[6000:6300], g[2000:2300])
	qual := make([]uint8, 62)
	for i := range qual {
		qual[i] = 30
	}
	rd := &fastq.Read{Name: "dup", Seq: g[2100:2162].Clone(), Qual: qual}
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteAlignments(&buf, []*fastq.Read{rd}, "test"); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		if q := mustInt(t, f[4]); q > 10 {
			t.Errorf("ambiguous read MapQ = %d, want ~3 (50/50 split)", q)
		}
	}
}

func TestMapQFromWeight(t *testing.T) {
	if mapQFromWeight(1) != 60 || mapQFromWeight(0) != 0 {
		t.Error("extremes wrong")
	}
	if q := mapQFromWeight(0.5); q != 3 {
		t.Errorf("mapQ(0.5) = %d, want 3", q)
	}
	if q := mapQFromWeight(0.999999); q != 60 {
		t.Errorf("mapQ(~1) = %d, want 60", q)
	}
}

func mustInt(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
