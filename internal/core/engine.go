// Package core is the GNUMAP-SNP mapping engine: the paper's three-step
// pipeline (k-mer seeding → probabilistic Pair-HMM marginal alignment →
// online accumulation of per-position nucleotide probabilities), with
// the shared-memory worker-pool parallelization, and — in cluster.go —
// the two MPI-style distributed modes (read-split and genome-split).
//
// The engine's distinguishing behaviours, which the ablation benches
// isolate, are:
//
//  1. quality-weighted PHMM emissions (reads are PWMs, not strings);
//  2. marginal (forward-backward) accumulation over all alignments of a
//     read at a location, rather than one best path;
//  3. multi-location posterior weighting: a read mapping plausibly to
//     several locations contributes to all of them, weighted by each
//     location's share of the total alignment likelihood.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/kmer"
	"gnumap/internal/phmm"
	"gnumap/internal/pwm"
)

// Config tunes the engine. Zero values select paper defaults.
type Config struct {
	// PHMM holds the Pair-HMM parameters (default phmm.DefaultParams).
	PHMM phmm.Params
	// AlignMode selects Global (paper-faithful windows) or SemiGlobal
	// (padded windows, the default).
	AlignMode phmm.Mode
	// K is the seed k-mer length (default kmer.DefaultK = 10).
	K int
	// Pad is the extra genome context on each side of a candidate
	// window in SemiGlobal mode (default 8).
	Pad int
	// Workers is the shared-memory worker count (default GOMAXPROCS).
	Workers int
	// Attribution selects how posterior mass maps to base channels
	// (default phmm.ByCall, the paper's formulation).
	Attribution phmm.Attribution
	// MaxCandidates caps candidate locations per strand (default 8).
	MaxCandidates int
	// MinSeedVotes drops candidate diagonals with fewer seed hits
	// (default 2; 1 for very short reads).
	MinSeedVotes int
	// MinVoteFraction drops candidates whose seed votes are below this
	// fraction of the read's best candidate across both strands
	// (default 0.25). True multi-mapping locations retain near-equal
	// votes and survive; spurious diagonals with a couple of chance
	// seed hits are skipped before the expensive PHMM.
	MinVoteFraction float64
	// MaxBucket masks seed k-mers occurring more often than this in
	// the reference (default 1024).
	MaxBucket int
	// MinPosterior drops mapping locations carrying less than this
	// share of a read's total alignment likelihood (default 0.01).
	MinPosterior float64
	// MinLocLogLik rejects individual alignments whose per-base
	// log-likelihood is below this (default -2.0; random 62-bp
	// alignments score far lower, true mappings far higher). It is
	// the engine's "does this read map here at all" filter.
	MinLocLogLik float64
	// ViterbiOnly switches accumulation to the single best path per
	// location (ablation of the marginal alignment).
	ViterbiOnly bool
	// IgnoreQualities treats every read as perfectly called (one-hot
	// PWM rows), disabling the paper's quality-weighted emission
	// p*(i,j) (ablation of the PWM extension).
	IgnoreQualities bool
	// BestHitOnly keeps only the highest-likelihood location per read
	// (ablation of multi-location posterior weighting).
	BestHitOnly bool
}

func (c Config) withDefaults() Config {
	zero := phmm.Params{}
	if c.PHMM == zero {
		c.PHMM = phmm.DefaultParams()
	}
	if c.K == 0 {
		c.K = kmer.DefaultK
	}
	if c.Pad == 0 {
		c.Pad = 8
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 8
	}
	if c.MinSeedVotes == 0 {
		c.MinSeedVotes = 2
	}
	if c.MaxBucket == 0 {
		c.MaxBucket = 1024
	}
	if c.MinPosterior == 0 {
		c.MinPosterior = 0.01
	}
	if c.MinVoteFraction == 0 {
		c.MinVoteFraction = 0.25
	}
	if c.MinLocLogLik == 0 {
		c.MinLocLogLik = -2.0
	}
	return c
}

// Stats counts mapping outcomes.
type Stats struct {
	// Mapped and Unmapped count reads; Locations counts accepted
	// (read, location) pairs — Locations/Mapped > 1 indicates
	// multi-mapping reads contributing to several loci.
	Mapped, Unmapped, Locations int64
}

// add merges another Stats (used when aggregating across nodes).
func (s *Stats) add(o Stats) {
	s.Mapped += o.Mapped
	s.Unmapped += o.Unmapped
	s.Locations += o.Locations
}

// Engine maps reads against one reference (or reference slice).
type Engine struct {
	cfg Config
	ref *genome.Reference
	idx *kmer.Index
	// indexOffset is the global position of idx position 0 (non-zero
	// for genome-split nodes indexing a slice).
	indexOffset int
	// ownLo/ownHi restrict accepted candidate starts to [ownLo, ownHi)
	// in genome-split mode, so a location straddling two nodes' index
	// overlap is claimed by exactly one of them.
	ownLo, ownHi int
}

// NewEngine indexes the full reference.
func NewEngine(ref *genome.Reference, cfg Config) (*Engine, error) {
	if ref == nil || ref.Len() == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	return newEngineSlice(ref, 0, ref.Len(), cfg)
}

// newEngineSlice indexes only global positions [lo, hi) of the
// reference (genome-split mode).
func newEngineSlice(ref *genome.Reference, lo, hi int, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.PHMM.Validate(); err != nil {
		return nil, err
	}
	if ref == nil || ref.Len() == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	if lo < 0 || hi > ref.Len() || lo >= hi {
		return nil, fmt.Errorf("core: slice [%d,%d) of reference length %d", lo, hi, ref.Len())
	}
	idx, err := kmer.New(ref.Seq()[lo:hi], cfg.K)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, ref: ref, idx: idx, indexOffset: lo, ownLo: 0, ownHi: ref.Len()}, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// IndexMemoryBytes reports the k-mer index footprint.
func (e *Engine) IndexMemoryBytes() int64 { return e.idx.MemoryBytes() }

// location is one accepted mapping of a read.
type location struct {
	// windowStart is the global position of contribs[0].
	windowStart int
	logLik      float64
	contribs    []genome.Vec
	// minus marks a reverse-strand alignment.
	minus bool
	// windowLen is the candidate window length (for re-alignment when
	// a concrete path is needed, e.g. SAM output).
	windowLen int
}

// mapper holds per-worker scratch state.
type mapper struct {
	e       *Engine
	aligner *phmm.Aligner
	locs    []location
	totals  []float64
}

func (e *Engine) newMapper() (*mapper, error) {
	al, err := phmm.NewAligner(e.cfg.PHMM, e.cfg.AlignMode)
	if err != nil {
		return nil, err
	}
	return &mapper{e: e, aligner: al}, nil
}

// mapRead computes the accepted locations of one read with raw
// log-likelihoods; posterior weighting happens in the caller so the
// genome-split mode can normalize globally. The returned slice aliases
// m.locs and is valid until the next mapRead call.
func (m *mapper) mapRead(rd *fastq.Read) ([]location, error) {
	m.locs = m.locs[:0]
	if err := rd.Validate(); err != nil {
		return nil, nil // malformed read: unmapped, not fatal
	}
	var fwdPWM *pwm.Matrix
	var err error
	if m.e.cfg.IgnoreQualities {
		fwdPWM, err = pwm.FromSeqUniformError(rd.Seq, 0)
	} else {
		fwdPWM, err = pwm.FromRead(rd)
	}
	if err != nil {
		return nil, nil
	}
	revPWM := fwdPWM.ReverseComplement()
	e := m.e
	minVotes := e.cfg.MinSeedVotes
	if len(rd.Seq) < 2*e.cfg.K {
		minVotes = 1
	}
	opts := kmer.CandidateOptions{
		MaxCandidates: e.cfg.MaxCandidates,
		MinVotes:      minVotes,
		MaxBucket:     e.cfg.MaxBucket,
		// SemiGlobal windows are padded, so nearby diagonals (indel
		// shifts) can merge into one candidate; Global windows must
		// start on the exact diagonal.
		Slack: 2,
	}
	pad := e.cfg.Pad
	if e.cfg.AlignMode == phmm.Global {
		pad = 0
		opts.Slack = 0
	}
	type strandCase struct {
		p     *pwm.Matrix
		calls dna.Seq
	}
	strands := []strandCase{{fwdPWM, fwdPWM.Calls()}, {revPWM, revPWM.Calls()}}
	// Collect candidates from both strands first so the vote filter is
	// relative to the read's best location overall.
	type scored struct {
		sc   int
		cand kmer.Candidate
	}
	var cands []scored
	bestVotes := int32(0)
	for si := range strands {
		for _, cand := range e.idx.Candidates(strands[si].calls, opts) {
			cands = append(cands, scored{sc: si, cand: cand})
			if cand.Votes > bestVotes {
				bestVotes = cand.Votes
			}
		}
	}
	voteCut := int32(e.cfg.MinVoteFraction * float64(bestVotes))
	for _, cs := range cands {
		{
			cand := cs.cand
			sc := strands[cs.sc]
			minus := cs.sc == 1
			if cand.Votes < voteCut {
				continue
			}
			globalStart := int(cand.Start) + e.indexOffset
			if globalStart < e.ownLo || globalStart >= e.ownHi {
				continue
			}
			winStart := globalStart - pad
			winLen := len(rd.Seq) + 2*pad
			window, clippedStart := e.ref.Window(winStart, winLen)
			if len(window) < len(rd.Seq) && e.cfg.AlignMode == phmm.Global {
				continue
			}
			if len(window) == 0 {
				continue
			}
			if err := m.alignAt(sc.p, window, clippedStart, len(rd.Seq), minus); err != nil {
				return nil, err
			}
		}
	}
	return m.locs, nil
}

// alignAt aligns a PWM to a window and appends an accepted location.
func (m *mapper) alignAt(p *pwm.Matrix, window dna.Seq, windowStart, readLen int, minus bool) error {
	e := m.e
	if e.cfg.ViterbiOnly {
		return m.viterbiAt(p, window, windowStart, readLen, minus)
	}
	res, err := m.aligner.Align(p, window)
	if err == phmm.ErrNoAlignment {
		return nil
	}
	if err != nil {
		return err
	}
	if res.LogLik/float64(readLen) < e.cfg.MinLocLogLik {
		return nil
	}
	contribs := make([]genome.Vec, len(window))
	if cap(m.totals) < len(window) {
		m.totals = make([]float64, len(window))
	}
	totals := m.totals[:len(window)]
	if err := res.ContributionsInto(e.cfg.Attribution, contribs, totals); err != nil {
		return err
	}
	any := false
	for j := range contribs {
		if totals[j] > 0.5 {
			// Positions materially covered by the alignment keep
			// their normalized channel vector; lightly grazed window
			// padding (total << 1) is noise and is zeroed.
			any = true
		} else {
			contribs[j] = genome.Vec{}
		}
	}
	if !any {
		return nil
	}
	m.locs = append(m.locs, location{
		windowStart: windowStart, logLik: res.LogLik, contribs: contribs,
		minus: minus, windowLen: len(window),
	})
	return nil
}

// viterbiAt is the single-best-path ablation: the best alignment's
// matched bases contribute deterministically (probability one each).
func (m *mapper) viterbiAt(p *pwm.Matrix, window dna.Seq, windowStart, readLen int, minus bool) error {
	path, err := m.aligner.Viterbi(p, window)
	if err == phmm.ErrNoAlignment {
		return nil
	}
	if err != nil {
		return err
	}
	if path.LogProb/float64(readLen) < m.e.cfg.MinLocLogLik {
		return nil
	}
	contribs := make([]genome.Vec, len(window))
	i := 0 // read cursor
	j := path.Start - 1
	for _, op := range path.Ops {
		switch op {
		case phmm.OpMatch:
			call := p.Call(i)
			if call.IsConcrete() {
				contribs[j][call] = 1
			}
			i++
			j++
		case phmm.OpInsert:
			i++
		case phmm.OpDelete:
			contribs[j][dna.ChGap] = 1
			j++
		}
	}
	m.locs = append(m.locs, location{
		windowStart: windowStart, logLik: path.LogProb, contribs: contribs,
		minus: minus, windowLen: len(window),
	})
	return nil
}

// weights converts location log-likelihoods to posterior weights with a
// numerically safe softmax; locations below MinPosterior are zeroed.
// With BestHitOnly, the best location gets weight 1.
func (e *Engine) weights(locs []location) []float64 {
	w := make([]float64, len(locs))
	if len(locs) == 0 {
		return w
	}
	if e.cfg.BestHitOnly {
		best := 0
		for i := range locs {
			if locs[i].logLik > locs[best].logLik {
				best = i
			}
		}
		w[best] = 1
		return w
	}
	maxLL := math.Inf(-1)
	for i := range locs {
		if locs[i].logLik > maxLL {
			maxLL = locs[i].logLik
		}
	}
	sum := 0.0
	for i := range locs {
		w[i] = math.Exp(locs[i].logLik - maxLL)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
		if w[i] < e.cfg.MinPosterior {
			w[i] = 0
		}
	}
	return w
}

// MapReads maps reads with the shared-memory worker pool, accumulating
// online into acc. Accumulator index 0 corresponds to global position
// accOffset (zero for a whole-genome accumulator).
func (e *Engine) MapReads(reads []*fastq.Read, acc genome.Accumulator, accOffset int) (Stats, error) {
	var st Stats
	if acc == nil {
		return st, fmt.Errorf("core: nil accumulator")
	}
	workers := e.cfg.Workers
	if workers > len(reads) && len(reads) > 0 {
		workers = len(reads)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	next := int64(-1)
	const batch = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := e.newMapper()
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for {
				lo := (atomic.AddInt64(&next, 1)) * batch
				if lo >= int64(len(reads)) {
					return
				}
				hi := lo + batch
				if hi > int64(len(reads)) {
					hi = int64(len(reads))
				}
				for _, rd := range reads[lo:hi] {
					locs, err := m.mapRead(rd)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					if len(locs) == 0 {
						atomic.AddInt64(&st.Unmapped, 1)
						continue
					}
					atomic.AddInt64(&st.Mapped, 1)
					ws := e.weights(locs)
					for i, loc := range locs {
						if ws[i] == 0 {
							continue
						}
						atomic.AddInt64(&st.Locations, 1)
						acc.AddRange(loc.windowStart-accOffset, loc.contribs, ws[i])
					}
				}
			}
		}()
	}
	wg.Wait()
	return st, firstErr
}
