// Package core is the GNUMAP-SNP mapping engine: the paper's three-step
// pipeline (k-mer seeding → probabilistic Pair-HMM marginal alignment →
// online accumulation of per-position nucleotide probabilities), with
// the shared-memory worker-pool parallelization, and — in cluster.go —
// the two MPI-style distributed modes (read-split and genome-split).
//
// The engine's distinguishing behaviours, which the ablation benches
// isolate, are:
//
//  1. quality-weighted PHMM emissions (reads are PWMs, not strings);
//  2. marginal (forward-backward) accumulation over all alignments of a
//     read at a location, rather than one best path;
//  3. multi-location posterior weighting: a read mapping plausibly to
//     several locations contributes to all of them, weighted by each
//     location's share of the total alignment likelihood.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/kmer"
	"gnumap/internal/obs"
	"gnumap/internal/phmm"
	"gnumap/internal/pwm"
)

// Config tunes the engine. Zero values select paper defaults.
type Config struct {
	// PHMM holds the Pair-HMM parameters (default phmm.DefaultParams).
	PHMM phmm.Params
	// AlignMode selects Global (paper-faithful windows) or SemiGlobal
	// (padded windows, the default).
	AlignMode phmm.Mode
	// K is the seed k-mer length (default kmer.DefaultK = 10). Values
	// above kmer.MaxDirectK select the frequency-capped large-seed
	// index (SNAP-style) instead of the direct offset table.
	K int
	// SeedIndex, when non-nil, is a prebuilt (or file-loaded) seed
	// index over the FULL reference, adopted instead of building one at
	// engine construction; its K() and SeqLen() must match the config
	// and reference. Genome-split nodes index their own slice and
	// ignore it.
	SeedIndex kmer.SeedIndex
	// Pad is the extra genome context on each side of a candidate
	// window in SemiGlobal mode (default 8).
	Pad int
	// Band is the diagonal band width (in DP cells) of the banded
	// Pair-HMM kernel. 0 ("auto") picks 2*Pad+2 in SemiGlobal mode —
	// the seed diagonal is known to within the window padding plus the
	// candidate-merge slack — and the full kernel in Global mode.
	// Negative forces the exact full-rectangle kernel.
	Band int
	// Workers is the shared-memory worker count (default GOMAXPROCS).
	Workers int
	// Batch is the number of reads per unit of worker-pool work: the
	// claim granularity of MapReads and the producer batch size of the
	// streaming MapReadsFrom (default 64).
	Batch int
	// Queue bounds the streaming pipeline's work queue, in batches
	// (default 4). MapReadsFrom recycles (Queue + Workers) batch
	// buffers through a free list, so a streaming run never holds more
	// than (Queue + Workers) · Batch reads resident regardless of the
	// input size — the producer blocks (backpressure) once every
	// buffer is filled or in flight.
	Queue int
	// Attribution selects how posterior mass maps to base channels
	// (default phmm.ByCall, the paper's formulation).
	Attribution phmm.Attribution
	// MaxCandidates caps candidate locations per strand (default 8).
	MaxCandidates int
	// MinSeedVotes drops candidate diagonals with fewer seed hits
	// (default 2; 1 for very short reads).
	MinSeedVotes int
	// MinVoteFraction drops candidates whose seed votes are below this
	// fraction of the read's best candidate across both strands
	// (default 0.25). True multi-mapping locations retain near-equal
	// votes and survive; spurious diagonals with a couple of chance
	// seed hits are skipped before the expensive PHMM.
	MinVoteFraction float64
	// MaxBucket masks seed k-mers occurring more often than this in
	// the reference (default 1024).
	MaxBucket int
	// MinPosterior drops mapping locations carrying less than this
	// share of a read's total alignment likelihood (default 0.01).
	MinPosterior float64
	// MinLocLogLik rejects individual alignments whose per-base
	// log-likelihood is below this (default -2.0; random 62-bp
	// alignments score far lower, true mappings far higher). It is
	// the engine's "does this read map here at all" filter.
	MinLocLogLik float64
	// PhmmBatch is the lane width of the batched wavefront Pair-HMM
	// kernel: a read's same-shape candidate windows are swept together,
	// up to this many per phmm.AlignBatch call, with scalar AlignBanded
	// picking up odd-shaped and leftover candidates. Batched lanes are
	// bit-identical to scalar calls, so this is purely a throughput
	// knob. 0 selects the default (DefaultPhmmBatch); 1 or negative
	// disables batching. ViterbiOnly mode always uses the scalar path.
	PhmmBatch int
	// ViterbiOnly switches accumulation to the single best path per
	// location (ablation of the marginal alignment).
	ViterbiOnly bool
	// IgnoreQualities treats every read as perfectly called (one-hot
	// PWM rows), disabling the paper's quality-weighted emission
	// p*(i,j) (ablation of the PWM extension).
	IgnoreQualities bool
	// BestHitOnly keeps only the highest-likelihood location per read
	// (ablation of multi-location posterior weighting).
	BestHitOnly bool
	// Accum selects how mapping workers share the accumulator: striped
	// locks (memory-tight), per-worker lock-free shards (contention-
	// free), or the default auto heuristic — sharded iff Workers > 1
	// and (Workers+1) genome-state copies fit AccumMemBudget. The
	// strategy takes effect for accumulators built via NewAccumulator;
	// the worker pools shard any genome.ShardProvider handed to them.
	Accum AccumStrategy
	// AccumMemBudget bounds the auto strategy's total accumulator
	// memory in bytes (default DefaultAccumMemBudget, 1 GiB).
	AccumMemBudget int64
	// Metrics, when non-nil, receives the engine's stage timers and
	// counters: map.seed.seconds (PWM build + candidate lookup),
	// map.align.seconds (Pair-HMM over all of a read's candidates),
	// map.accum.seconds (accumulator updates), map.read.seconds
	// (whole-read latency), plus map.candidates / map.alignments /
	// map.mapped / map.unmapped / map.locations and phmm.cells (DP
	// cells computed). Seed selectivity is tracked by map.seed.hits
	// (index positions voted), map.seed.masked (read seeds dropped by
	// MaxBucket), the map.candidates.per.read histogram, and the
	// index.bytes gauge. Nil disables instrumentation; the hot path
	// then pays only a pointer check.
	Metrics *obs.Registry
}

// DefaultPhmmBatch is the default lane width of the batched wavefront
// Pair-HMM kernel — the width the amd64 SIMD sweep is specialized for.
const DefaultPhmmBatch = 8

func (c Config) withDefaults() Config {
	zero := phmm.Params{}
	if c.PHMM == zero {
		c.PHMM = phmm.DefaultParams()
	}
	if c.K == 0 {
		if c.SeedIndex != nil {
			c.K = c.SeedIndex.K()
		} else {
			c.K = kmer.DefaultK
		}
	}
	if c.Pad == 0 {
		c.Pad = 8
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.Queue == 0 {
		c.Queue = 4
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 8
	}
	if c.MinSeedVotes == 0 {
		c.MinSeedVotes = 2
	}
	if c.MaxBucket == 0 {
		c.MaxBucket = 1024
	}
	if c.MinPosterior == 0 {
		c.MinPosterior = 0.01
	}
	if c.MinVoteFraction == 0 {
		c.MinVoteFraction = 0.25
	}
	if c.MinLocLogLik == 0 {
		c.MinLocLogLik = -2.0
	}
	if c.PhmmBatch == 0 {
		c.PhmmBatch = DefaultPhmmBatch
	}
	if c.AccumMemBudget == 0 {
		c.AccumMemBudget = DefaultAccumMemBudget
	}
	return c
}

// workerTarget resolves the accumulator one worker goroutine should
// write through: a private lock-free shard when the accumulator is
// sharded, the shared (striped) accumulator otherwise.
func workerTarget(acc genome.Accumulator) genome.Accumulator {
	if sp, ok := acc.(genome.ShardProvider); ok {
		return sp.WorkerShard()
	}
	return acc
}

// effectiveBand resolves the Band knob into the width passed to
// phmm.AlignBanded (0 there means "full kernel"). Call only after
// withDefaults, since auto mode depends on Pad.
func (c Config) effectiveBand() int {
	switch {
	case c.Band > 0:
		return c.Band
	case c.Band < 0:
		return 0
	case c.AlignMode == phmm.SemiGlobal:
		return 2*c.Pad + 2
	default:
		// Global windows are exact-size and unpadded; an indel anywhere
		// shifts the tail off any narrow diagonal, so auto keeps the
		// full kernel.
		return 0
	}
}

// Resolved returns the configuration with every defaulted knob filled
// in — the effective values a run actually uses. Checkpoint
// fingerprints hash the resolved form so "zero value" and "explicit
// default" never spuriously mismatch.
func (c Config) Resolved() Config { return c.withDefaults() }

// EffectiveBand resolves the Band knob (including auto mode) into the
// concrete band width a run uses.
func (c Config) EffectiveBand() int { return c.withDefaults().effectiveBand() }

// Stats counts mapping outcomes.
type Stats struct {
	// Mapped and Unmapped count reads; Locations counts accepted
	// (read, location) pairs — Locations/Mapped > 1 indicates
	// multi-mapping reads contributing to several loci.
	Mapped, Unmapped, Locations int64
	// LostRanks lists cluster ranks that died during a fault-tolerant
	// read-split run; their shards were reassigned to survivors, so the
	// counts above still cover every read. Empty on healthy runs.
	LostRanks []int
}

// Degraded reports whether the run lost (and recovered from) ranks.
func (s Stats) Degraded() bool { return len(s.LostRanks) > 0 }

// add merges another Stats (used when aggregating across nodes).
// LostRanks is the union of both sides (deduped, sorted): dropping it
// here silently cleared Degraded() whenever per-node stats were folded
// together, hiding a degraded run from the caller.
func (s *Stats) add(o Stats) {
	s.Mapped += o.Mapped
	s.Unmapped += o.Unmapped
	s.Locations += o.Locations
	s.LostRanks = unionRanks(s.LostRanks, o.LostRanks)
}

// unionRanks merges two rank lists into a sorted, deduplicated union.
// Returns nil when both inputs are empty so healthy Stats stay
// comparable to their zero value.
func unionRanks(a, b []int) []int {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, lists := range [2][]int{a, b} {
		for _, r := range lists {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Ints(out)
	return out
}

// engineMetrics pre-resolves the engine's metric handles once at
// construction so the mapping hot path never touches the registry's
// name map; every update is a single atomic op.
type engineMetrics struct {
	seedSec, alignSec, accumSec, readSec *obs.Histogram
	candidates, alignments, cells        *obs.Counter
	mapped, unmapped, locations          *obs.Counter
	seedHits, seedMasked                 *obs.Counter
	candPerRead                          *obs.Histogram
}

// alignmentsInc is a nil-safe helper for the inner align loop.
func (em *engineMetrics) alignmentsInc() {
	if em != nil {
		em.alignments.Inc()
	}
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		seedSec:    reg.Timer("map.seed.seconds"),
		alignSec:   reg.Timer("map.align.seconds"),
		accumSec:   reg.Timer("map.accum.seconds"),
		readSec:    reg.Timer("map.read.seconds"),
		candidates: reg.Counter("map.candidates"),
		alignments: reg.Counter("map.alignments"),
		cells:      reg.Counter("phmm.cells"),
		mapped:     reg.Counter("map.mapped"),
		unmapped:   reg.Counter("map.unmapped"),
		locations:  reg.Counter("map.locations"),
		seedHits:   reg.Counter("map.seed.hits"),
		seedMasked: reg.Counter("map.seed.masked"),
		candPerRead: reg.Histogram(
			"map.candidates.per.read", obs.CountBuckets),
	}
}

// Engine maps reads against one reference (or reference slice).
type Engine struct {
	cfg Config
	// band is the resolved PHMM band width (cfg.effectiveBand()).
	band int
	ref  *genome.Reference
	idx  kmer.SeedIndex
	// met is nil when Config.Metrics is nil — instrumentation off.
	met *engineMetrics
	// indexOffset is the global position of idx position 0 (non-zero
	// for genome-split nodes indexing a slice).
	indexOffset int
	// ownLo/ownHi restrict accepted candidate starts to [ownLo, ownHi)
	// in genome-split mode, so a location straddling two nodes' index
	// overlap is claimed by exactly one of them.
	ownLo, ownHi int
	// testMapErr, when non-nil, is consulted before mapping each read.
	// Test-only: it lets the stop-latch and streaming error paths
	// inject deterministic per-read failures.
	testMapErr func(*fastq.Read) error
	// tracker, when non-nil, counts accumulator writes per genome
	// region so the incremental caller can re-sweep only regions that
	// changed between quiesce points.
	tracker *genome.RegionTracker
}

// SetRegionTracker registers a per-region write tracker: every accepted
// accumulator contribution also touches the tracker. Set it before
// mapping starts; nil disables tracking.
func (e *Engine) SetRegionTracker(t *genome.RegionTracker) { e.tracker = t }

// NewEngine indexes the full reference.
func NewEngine(ref *genome.Reference, cfg Config) (*Engine, error) {
	if ref == nil || ref.Len() == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	return newEngineSlice(ref, 0, ref.Len(), cfg)
}

// newEngineSlice indexes only global positions [lo, hi) of the
// reference (genome-split mode).
func newEngineSlice(ref *genome.Reference, lo, hi int, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.PHMM.Validate(); err != nil {
		return nil, err
	}
	if ref == nil || ref.Len() == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	if lo < 0 || hi > ref.Len() || lo >= hi {
		return nil, fmt.Errorf("core: slice [%d,%d) of reference length %d", lo, hi, ref.Len())
	}
	var idx kmer.SeedIndex
	if cfg.SeedIndex != nil && lo == 0 && hi == ref.Len() {
		if cfg.SeedIndex.K() != cfg.K {
			return nil, fmt.Errorf("core: seed index k=%d, config k=%d", cfg.SeedIndex.K(), cfg.K)
		}
		if cfg.SeedIndex.SeqLen() != ref.Len() {
			return nil, fmt.Errorf("core: seed index covers %d bases, reference has %d",
				cfg.SeedIndex.SeqLen(), ref.Len())
		}
		idx = cfg.SeedIndex
	} else {
		built, err := kmer.Build(ref.Seq()[lo:hi], cfg.K)
		if err != nil {
			return nil, err
		}
		idx = built
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("index.bytes").Set(float64(idx.MemoryBytes()))
	}
	return &Engine{
		cfg: cfg, band: cfg.effectiveBand(), met: newEngineMetrics(cfg.Metrics),
		ref: ref, idx: idx, indexOffset: lo, ownLo: 0, ownHi: ref.Len(),
	}, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// IndexMemoryBytes reports the k-mer index footprint.
func (e *Engine) IndexMemoryBytes() int64 { return e.idx.MemoryBytes() }

// location is one accepted mapping of a read.
type location struct {
	// windowStart is the global position of contribs[0].
	windowStart int
	logLik      float64
	contribs    []genome.Vec
	// minus marks a reverse-strand alignment.
	minus bool
	// windowLen is the candidate window length (for re-alignment when
	// a concrete path is needed, e.g. SAM output).
	windowLen int
}

// scoredCand pairs a candidate with its source strand (0 = forward,
// 1 = reverse complement).
type scoredCand struct {
	sc   int
	cand kmer.Candidate
}

// pendingAlign is one candidate window waiting for the batched kernel:
// the alignment inputs plus, after the flush, the outcome. Keeping the
// outcome on the pending entry lets flushPending sweep batches in
// whatever grouping is efficient and still emit accepted locations in
// the original candidate order — so softmax weighting and accumulation
// see the exact float sequence the scalar path produces.
type pendingAlign struct {
	p           *pwm.Matrix
	window      dna.Seq
	windowStart int
	readLen     int
	diag        int
	minus       bool
	done        bool
	accepted    bool
	loc         location
}

// mapper holds per-worker scratch state. All of it is reused across
// mapRead calls so the steady-state mapping hot path performs no heap
// allocations.
type mapper struct {
	e       *Engine
	aligner *phmm.Aligner
	// batch is the wavefront kernel, nil when batching is disabled
	// (PhmmBatch < 2 or ViterbiOnly); batchWidth is its lane cap.
	batch      *phmm.BatchAligner
	batchWidth int
	// met aliases e.met; lastCells tracks the cumulative DP cell count
	// across both kernels so each read publishes only its delta.
	met       *engineMetrics
	lastCells int64
	locs      []location
	totals    []float64
	// Per-read scratch.
	fwdPWM, revPWM pwm.Matrix
	candBuf        kmer.CandidateBuf
	scored         []scoredCand
	wbuf           []float64
	// Batched-alignment scratch: the read's pending candidate windows,
	// the (shape, diag) group index, and the lane input views.
	pending []pendingAlign
	bidx    []int
	bxs     []*pwm.Matrix
	bys     []dna.Seq
	// arena backs the contribs slices of the current read's locations;
	// arenaOff is the bump-pointer, reset at the top of every mapRead.
	arena    []genome.Vec
	arenaOff int
}

// grabContribs carves a zeroed n-element chunk from the arena. Chunks
// stay referenced by m.locs until the next mapRead resets arenaOff, so
// growth swaps in a fresh backing array instead of copying: live chunks
// keep pointing into the old one. After a few reads the arena reaches
// the high-water mark and grabs stop allocating.
func (m *mapper) grabContribs(n int) []genome.Vec {
	if m.arenaOff+n > len(m.arena) {
		sz := 2 * (m.arenaOff + n)
		if sz < 1024 {
			sz = 1024
		}
		m.arena = make([]genome.Vec, sz)
		m.arenaOff = 0
	}
	c := m.arena[m.arenaOff : m.arenaOff+n : m.arenaOff+n]
	m.arenaOff += n
	for j := range c {
		c[j] = genome.Vec{}
	}
	return c
}

func (e *Engine) newMapper() (*mapper, error) {
	al, err := phmm.NewAligner(e.cfg.PHMM, e.cfg.AlignMode)
	if err != nil {
		return nil, err
	}
	m := &mapper{e: e, aligner: al, met: e.met}
	if e.cfg.PhmmBatch >= 2 && !e.cfg.ViterbiOnly {
		ba, err := phmm.NewBatchAligner(e.cfg.PHMM, e.cfg.AlignMode)
		if err != nil {
			return nil, err
		}
		m.batch = ba
		m.batchWidth = e.cfg.PhmmBatch
	}
	return m, nil
}

// mapRead computes the accepted locations of one read with raw
// log-likelihoods; posterior weighting happens in the caller so the
// genome-split mode can normalize globally. The returned slice aliases
// m.locs and is valid until the next mapRead call.
func (m *mapper) mapRead(rd *fastq.Read) ([]location, error) {
	m.locs = m.locs[:0]
	m.arenaOff = 0
	var t0 time.Time
	if m.met != nil {
		t0 = time.Now()
	}
	if err := rd.Validate(); err != nil {
		return nil, nil // malformed read: unmapped, not fatal
	}
	var err error
	if m.e.cfg.IgnoreQualities {
		err = m.fwdPWM.FillSeqUniformError(rd.Seq, 0)
	} else {
		err = m.fwdPWM.FillFromRead(rd)
	}
	if err != nil {
		return nil, nil
	}
	m.revPWM.FillReverseComplementOf(&m.fwdPWM)
	e := m.e
	minVotes := e.cfg.MinSeedVotes
	if len(rd.Seq) < 2*e.cfg.K {
		minVotes = 1
	}
	opts := kmer.CandidateOptions{
		MaxCandidates: e.cfg.MaxCandidates,
		MinVotes:      minVotes,
		MaxBucket:     e.cfg.MaxBucket,
		// SemiGlobal windows are padded, so nearby diagonals (indel
		// shifts) can merge into one candidate; Global windows must
		// start on the exact diagonal.
		Slack: 2,
	}
	pad := e.cfg.Pad
	if e.cfg.AlignMode == phmm.Global {
		pad = 0
		opts.Slack = 0
	}
	strands := [2]*pwm.Matrix{&m.fwdPWM, &m.revPWM}
	// Collect candidates from both strands first so the vote filter is
	// relative to the read's best location overall. The CandidatesInto
	// result aliases m.candBuf and is invalidated by the second strand's
	// query, so candidates are copied out as they stream.
	cands := m.scored[:0]
	bestVotes := int32(0)
	var seedHits, seedMasked int64
	for si, p := range strands {
		for _, cand := range e.idx.CandidatesInto(p.Calls(), opts, &m.candBuf) {
			cands = append(cands, scoredCand{sc: si, cand: cand})
			if cand.Votes > bestVotes {
				bestVotes = cand.Votes
			}
		}
		// Stats are reset per CandidatesInto call: read them per strand.
		seedHits += m.candBuf.Stats.Hits
		seedMasked += m.candBuf.Stats.Masked
	}
	m.scored = cands
	// The seed phase ends here: PWM construction plus k-mer candidate
	// lookup on both strands. Everything below is the align phase.
	var tSeed time.Time
	if m.met != nil {
		tSeed = time.Now()
		m.met.seedSec.ObserveDuration(tSeed.Sub(t0))
		m.met.candidates.Add(int64(len(cands)))
		m.met.seedHits.Add(seedHits)
		m.met.seedMasked.Add(seedMasked)
		m.met.candPerRead.Observe(float64(len(cands)))
	}
	voteCut := int32(e.cfg.MinVoteFraction * float64(bestVotes))
	for _, cs := range cands {
		cand := cs.cand
		minus := cs.sc == 1
		if cand.Votes < voteCut {
			continue
		}
		globalStart := int(cand.Start) + e.indexOffset
		if globalStart < e.ownLo || globalStart >= e.ownHi {
			continue
		}
		winStart := globalStart - pad
		winLen := len(rd.Seq) + 2*pad
		window, clippedStart := e.ref.Window(winStart, winLen)
		if len(window) < len(rd.Seq) && e.cfg.AlignMode == phmm.Global {
			continue
		}
		if len(window) == 0 {
			continue
		}
		// The seed says read position 0 sits at global position
		// globalStart, i.e. window column globalStart-clippedStart
		// (= Pad unless the window was clipped at a genome edge) — the
		// diagonal the banded kernel anchors to.
		diag := globalStart - clippedStart
		if m.batch != nil {
			// Defer to the batched wavefront kernel: same-shape windows
			// are swept together after the candidate loop.
			m.pending = append(m.pending, pendingAlign{
				p: strands[cs.sc], window: window, windowStart: clippedStart,
				readLen: len(rd.Seq), diag: diag, minus: minus,
			})
			continue
		}
		if err := m.alignAt(strands[cs.sc], window, clippedStart, len(rd.Seq), diag, minus); err != nil {
			return nil, err
		}
	}
	if m.batch != nil {
		if err := m.flushPending(); err != nil {
			return nil, err
		}
	}
	if m.met != nil {
		m.met.alignSec.ObserveDuration(time.Since(tSeed))
		c := m.aligner.CellsComputed()
		if m.batch != nil {
			c += m.batch.CellsComputed()
		}
		if c != m.lastCells {
			m.met.cells.Add(c - m.lastCells)
			m.lastCells = c
		}
	}
	return m.locs, nil
}

// flushPending sweeps the read's pending candidate windows through the
// batched kernel: entries are grouped by (window length, diag) — read
// length and band are constant within a read — and each group is swept
// in chunks of at most batchWidth lanes. Chunks of one fall back to the
// scalar kernel (identical results, no batch overhead). Accepted
// locations are then emitted in the original candidate order, keeping
// the downstream softmax and accumulation float sequences bit-identical
// to the unbatched path.
func (m *mapper) flushPending() error {
	pend := m.pending
	for start := range pend {
		if pend[start].done {
			continue
		}
		wlen, diag := len(pend[start].window), pend[start].diag
		idxs := m.bidx[:0]
		for k := start; k < len(pend); k++ {
			if !pend[k].done && len(pend[k].window) == wlen && pend[k].diag == diag {
				idxs = append(idxs, k)
			}
		}
		m.bidx = idxs
		for off := 0; off < len(idxs); off += m.batchWidth {
			end := off + m.batchWidth
			if end > len(idxs) {
				end = len(idxs)
			}
			chunk := idxs[off:end]
			if len(chunk) == 1 {
				if err := m.alignPending(&pend[chunk[0]]); err != nil {
					return err
				}
				continue
			}
			bxs, bys := m.bxs[:0], m.bys[:0]
			for _, k := range chunk {
				bxs = append(bxs, pend[k].p)
				bys = append(bys, pend[k].window)
				m.met.alignmentsInc()
			}
			m.bxs, m.bys = bxs, bys
			results, err := m.batch.AlignBatch(bxs, bys, diag, m.e.band)
			if err != nil {
				return err
			}
			// Results are views into the batch aligner's buffers,
			// invalidated by the next AlignBatch call — finish each lane
			// (filter + contributions into the arena) before moving on.
			for l, k := range chunk {
				pa := &pend[k]
				pa.done = true
				res := &results[l]
				if res.Err != nil {
					continue
				}
				loc, ok, err := m.finishAlignment(res.LogLik, res, pa)
				if err != nil {
					return err
				}
				pa.loc, pa.accepted = loc, ok
			}
		}
	}
	for i := range pend {
		if pend[i].accepted {
			m.locs = append(m.locs, pend[i].loc)
		}
	}
	m.pending = pend[:0]
	return nil
}

// alignPending runs one pending candidate through the scalar kernel —
// the leftover path of flushPending.
func (m *mapper) alignPending(pa *pendingAlign) error {
	pa.done = true
	m.met.alignmentsInc()
	res, err := m.aligner.AlignBanded(pa.p, pa.window, pa.diag, m.e.band)
	if err == phmm.ErrNoAlignment {
		return nil
	}
	if err != nil {
		return err
	}
	loc, ok, err := m.finishAlignment(res.LogLik, res, pa)
	if err != nil {
		return err
	}
	pa.loc, pa.accepted = loc, ok
	return nil
}

// contribSource is the posterior-contribution view shared by the scalar
// Result and a batched lane.
type contribSource interface {
	ContributionsInto(phmm.Attribution, []genome.Vec, []float64) error
}

// finishAlignment applies the per-location acceptance filters and
// extracts contributions — the shared tail of the scalar and batched
// alignment paths.
func (m *mapper) finishAlignment(logLik float64, src contribSource, pa *pendingAlign) (location, bool, error) {
	e := m.e
	if logLik/float64(pa.readLen) < e.cfg.MinLocLogLik {
		return location{}, false, nil
	}
	window := pa.window
	contribs := m.grabContribs(len(window))
	if cap(m.totals) < len(window) {
		m.totals = make([]float64, len(window))
	}
	totals := m.totals[:len(window)]
	if err := src.ContributionsInto(e.cfg.Attribution, contribs, totals); err != nil {
		return location{}, false, err
	}
	any := false
	for j := range contribs {
		if totals[j] > 0.5 {
			// Positions materially covered by the alignment keep
			// their normalized channel vector; lightly grazed window
			// padding (total << 1) is noise and is zeroed.
			any = true
		} else {
			contribs[j] = genome.Vec{}
		}
	}
	if !any {
		return location{}, false, nil
	}
	return location{
		windowStart: pa.windowStart, logLik: logLik, contribs: contribs,
		minus: pa.minus, windowLen: len(window),
	}, true, nil
}

// alignAt aligns a PWM to a window (banded around diag when the engine
// has a band configured) and appends an accepted location.
func (m *mapper) alignAt(p *pwm.Matrix, window dna.Seq, windowStart, readLen, diag int, minus bool) error {
	e := m.e
	if e.cfg.ViterbiOnly {
		return m.viterbiAt(p, window, windowStart, readLen, diag, minus)
	}
	m.met.alignmentsInc()
	res, err := m.aligner.AlignBanded(p, window, diag, e.band)
	if err == phmm.ErrNoAlignment {
		return nil
	}
	if err != nil {
		return err
	}
	pa := pendingAlign{
		p: p, window: window, windowStart: windowStart,
		readLen: readLen, diag: diag, minus: minus,
	}
	loc, ok, err := m.finishAlignment(res.LogLik, res, &pa)
	if err != nil {
		return err
	}
	if ok {
		m.locs = append(m.locs, loc)
	}
	return nil
}

// viterbiAt is the single-best-path ablation: the best alignment's
// matched bases contribute deterministically (probability one each).
func (m *mapper) viterbiAt(p *pwm.Matrix, window dna.Seq, windowStart, readLen, diag int, minus bool) error {
	m.met.alignmentsInc()
	path, err := m.aligner.ViterbiBanded(p, window, diag, m.e.band)
	if err == phmm.ErrNoAlignment {
		return nil
	}
	if err != nil {
		return err
	}
	if path.LogProb/float64(readLen) < m.e.cfg.MinLocLogLik {
		return nil
	}
	contribs := m.grabContribs(len(window))
	i := 0 // read cursor
	j := path.Start - 1
	for _, op := range path.Ops {
		switch op {
		case phmm.OpMatch:
			call := p.Call(i)
			if call.IsConcrete() {
				contribs[j][call] = 1
			}
			i++
			j++
		case phmm.OpInsert:
			i++
		case phmm.OpDelete:
			contribs[j][dna.ChGap] = 1
			j++
		}
	}
	m.locs = append(m.locs, location{
		windowStart: windowStart, logLik: path.LogProb, contribs: contribs,
		minus: minus, windowLen: len(window),
	})
	return nil
}

// weights converts location log-likelihoods to posterior weights with a
// numerically safe softmax; locations below MinPosterior are zeroed and
// the surviving weights are renormalized so each mapped read deposits
// exactly one unit of posterior mass (instead of silently leaking the
// thresholded share). With BestHitOnly, the best location gets weight 1.
// buf, when non-nil with sufficient capacity, backs the returned slice.
func (e *Engine) weights(locs []location, buf []float64) []float64 {
	if cap(buf) < len(locs) {
		buf = make([]float64, len(locs))
	}
	w := buf[:len(locs)]
	if len(locs) == 0 {
		return w
	}
	if e.cfg.BestHitOnly {
		best := 0
		for i := range locs {
			w[i] = 0
			if locs[i].logLik > locs[best].logLik {
				best = i
			}
		}
		w[best] = 1
		return w
	}
	maxLL := math.Inf(-1)
	for i := range locs {
		if locs[i].logLik > maxLL {
			maxLL = locs[i].logLik
		}
	}
	sum := 0.0
	for i := range locs {
		w[i] = math.Exp(locs[i].logLik - maxLL)
		sum += w[i]
	}
	surviving := 0.0
	for i := range w {
		w[i] /= sum
		if w[i] < e.cfg.MinPosterior {
			w[i] = 0
		} else {
			surviving += w[i]
		}
	}
	// The best location always clears any MinPosterior < 1/len(locs)...
	// but guard against a degenerate threshold zeroing everything.
	if surviving > 0 && surviving < 1 {
		inv := 1 / surviving
		for i := range w {
			w[i] *= inv
		}
	}
	return w
}

// consumeRead maps one read and folds its weighted contributions into
// acc — the shared per-read body of the slice (MapReads) and streaming
// (MapReadsFrom) worker loops. Stats fields are updated atomically;
// the accumulator handles its own locking.
func (m *mapper) consumeRead(rd *fastq.Read, acc genome.Accumulator, accOffset int, st *Stats) error {
	met := m.met
	var tRead time.Time
	if met != nil {
		tRead = time.Now()
	}
	if hook := m.e.testMapErr; hook != nil {
		if err := hook(rd); err != nil {
			return err
		}
	}
	locs, err := m.mapRead(rd)
	if err != nil {
		return err
	}
	if len(locs) == 0 {
		atomic.AddInt64(&st.Unmapped, 1)
		if met != nil {
			met.unmapped.Inc()
			met.readSec.ObserveDuration(time.Since(tRead))
		}
		return nil
	}
	atomic.AddInt64(&st.Mapped, 1)
	ws := m.e.weights(locs, m.wbuf)
	m.wbuf = ws
	var tAcc time.Time
	if met != nil {
		tAcc = time.Now()
	}
	accepted := int64(0)
	tracker := m.e.tracker
	for i, loc := range locs {
		if ws[i] == 0 {
			continue
		}
		accepted++
		acc.AddRange(loc.windowStart-accOffset, loc.contribs, ws[i])
		if tracker != nil {
			tracker.Touch(loc.windowStart-accOffset, len(loc.contribs))
		}
	}
	atomic.AddInt64(&st.Locations, accepted)
	if met != nil {
		now := time.Now()
		met.accumSec.ObserveDuration(now.Sub(tAcc))
		met.readSec.ObserveDuration(now.Sub(tRead))
		met.mapped.Inc()
		met.locations.Add(accepted)
	}
	return nil
}

// MapReads maps reads with the shared-memory worker pool, accumulating
// online into acc. Accumulator index 0 corresponds to global position
// accOffset (zero for a whole-genome accumulator).
//
// Error handling: the first worker failure latches the error AND a
// shared stop flag checked in the batch-claim loop, so surviving
// workers finish at most the batch they already hold instead of
// mapping the rest of the input into an accumulator the caller is
// about to discard.
func (e *Engine) MapReads(reads []*fastq.Read, acc genome.Accumulator, accOffset int) (Stats, error) {
	var st Stats
	if acc == nil {
		return st, fmt.Errorf("core: nil accumulator")
	}
	workers := e.cfg.Workers
	if workers > len(reads) && len(reads) > 0 {
		workers = len(reads)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	var stop atomic.Bool
	latch := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	next := int64(-1)
	batch := int64(e.cfg.Batch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := e.newMapper()
			if err != nil {
				latch(err)
				return
			}
			target := workerTarget(acc)
			for {
				if stop.Load() {
					return
				}
				lo := (atomic.AddInt64(&next, 1)) * batch
				if lo >= int64(len(reads)) {
					return
				}
				hi := lo + batch
				if hi > int64(len(reads)) {
					hi = int64(len(reads))
				}
				for _, rd := range reads[lo:hi] {
					if err := m.consumeRead(rd, target, accOffset, &st); err != nil {
						latch(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return st, firstErr
}
