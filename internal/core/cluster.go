package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"time"

	"gnumap/internal/cluster"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

func init() {
	gob.Register(ftResult{})
	gob.Register(ftCtrl{})
}

// The paper's two MPI modes (§VI Step 1):
//
//   - Read-split ("shared memory" in Figure 4): every node holds the
//     whole genome and accumulator, maps a 1/N shard of the reads, and
//     the accumulators are reduced to the root at the end. Minimal
//     communication, maximal memory.
//
//   - Genome-split ("spread memory" in Figure 4): every node holds a
//     1/N slice of the genome and accumulator, and every node maps all
//     reads against its slice. Posterior-location normalization needs
//     the *global* likelihood mass of each read, so nodes exchange
//     per-read likelihood sums every batch (three Allreduce rounds: a
//     max and a sum giving a distributed log-sum-exp, then a
//     survivor-mass sum so post-threshold renormalization matches the
//     shared-memory engine). Alignments
//     spilling over a slice boundary route their out-of-range
//     contributions to the owning node point-to-point at the end.
//     Minimal memory, more communication — which is why the paper's
//     Figure 4 shows it processing fewer sequences per second.

// readShard returns rank r's contiguous shard of n items.
func readShard(n, size, r int) (lo, hi int) {
	lo = n * r / size
	hi = n * (r + 1) / size
	return lo, hi
}

// RunReadSplit executes read-split mapping on one cluster node. Every
// rank maps its shard of reads against the full reference into a local
// full-length accumulator; accumulators are then reduced to rank 0. The
// returned accumulator is the merged result at rank 0 and nil
// elsewhere; the returned Stats are global on every rank.
func RunReadSplit(c *cluster.Comm, ref *genome.Reference, reads []*fastq.Read, mode genome.Mode, cfg Config) (genome.Accumulator, Stats, error) {
	if c.OpTimeout() > 0 {
		// Deadlines configured: run the fault-tolerant coordinator
		// protocol, which survives worker loss by reassigning shards.
		return runReadSplitFT(c, ref, reads, mode, cfg)
	}
	var st Stats
	eng, err := NewEngine(ref, cfg)
	if err != nil {
		return nil, st, err
	}
	acc, err := NewAccumulator(mode, ref.Len(), cfg)
	if err != nil {
		return nil, st, err
	}
	lo, hi := readShard(len(reads), c.Size(), c.Rank())
	local, err := eng.MapReads(reads[lo:hi], acc, 0)
	if err != nil {
		return nil, st, err
	}
	// Fold worker shards before the cross-rank reduction so the
	// collective tail always sees a plain striped accumulator.
	combined, err := CombineAccumulator(acc, cfg.Metrics)
	if err != nil {
		return nil, st, err
	}
	return reduceReadSplit(c, combined, mode, ref.Len(), local)
}

// reduceReadSplit is the collective tail shared by the slice and
// streaming read-split paths: Allreduce the local Stats into global
// ones and fold the per-rank accumulators to rank 0.
func reduceReadSplit(c *cluster.Comm, acc genome.Accumulator, mode genome.Mode, refLen int, local Stats) (genome.Accumulator, Stats, error) {
	var st Stats
	// Global stats.
	sv, err := c.Allreduce([]float64{
		float64(local.Mapped), float64(local.Unmapped), float64(local.Locations),
	}, cluster.SumFloat64s)
	if err != nil {
		return nil, st, err
	}
	gs := sv.([]float64)
	st = Stats{Mapped: int64(gs[0]), Unmapped: int64(gs[1]), Locations: int64(gs[2])}

	// Reduce accumulator state to rank 0. Serialized states travel as
	// messages (the paper's "communicate the state of their genome"),
	// folded along a binomial tree so the merge work is distributed
	// across ranks instead of serializing at the root.
	stateful, ok := acc.(genome.Stateful)
	if !ok {
		return nil, st, fmt.Errorf("core: accumulator mode %v is not transportable", mode)
	}
	data, err := stateful.State()
	if err != nil {
		return nil, st, err
	}
	mergeStates := func(a, b any) (any, error) {
		left, err := genome.New(mode, refLen)
		if err != nil {
			return nil, err
		}
		if err := left.(genome.Stateful).LoadStateBytes(a.([]byte)); err != nil {
			return nil, err
		}
		right, err := genome.New(mode, refLen)
		if err != nil {
			return nil, err
		}
		if err := right.(genome.Stateful).LoadStateBytes(b.([]byte)); err != nil {
			return nil, err
		}
		if err := left.Merge(right); err != nil {
			return nil, err
		}
		return left.(genome.Stateful).State()
	}
	merged, err := c.ReduceTree(0, data, mergeStates)
	if err != nil {
		return nil, st, err
	}
	if c.Rank() != 0 {
		return nil, st, nil
	}
	if err := stateful.LoadStateBytes(merged.([]byte)); err != nil {
		return nil, st, err
	}
	return acc, st, nil
}

// GenomeSlice returns the [lo, hi) slice of the reference owned by a
// rank in genome-split mode.
func GenomeSlice(refLen, size, rank int) (lo, hi int) {
	return readShard(refLen, size, rank)
}

// spillBatch flattens boundary-crossing contributions for transport:
// groups of 6 float64s (position, five channel values), weight already
// applied.
type spillBatch []float64

// GenomeSplitBatch is the number of reads per genome-split
// normalization round: each batch costs three Allreduce collectives (a
// max, a sum, and a post-threshold survivor-mass sum, each over one
// float64 per read). Exported so the performance model in
// internal/experiments can count collective rounds.
const GenomeSplitBatch = 256

// RunGenomeSplit executes genome-split mapping on one cluster node.
// Every rank maps *all* reads against its genome slice; per-read
// location posteriors are normalized globally via per-batch Allreduce
// (log-sum-exp split into a max round and a sum round), and
// contributions spilling outside the slice are routed to their owning
// rank at the end. Returns the local slice accumulator, the owned
// range, and global Stats.
func RunGenomeSplit(c *cluster.Comm, ref *genome.Reference, reads []*fastq.Read, mode genome.Mode, cfg Config) (genome.Accumulator, int, int, Stats, error) {
	var st Stats
	cfg = cfg.withDefaults()
	size, rank := c.Size(), c.Rank()
	L := ref.Len()
	// Validate globally-visible conditions identically on every rank:
	// SPMD code must not have one rank error out of a collective while
	// the others enter it.
	if L < size {
		return nil, 0, 0, st, fmt.Errorf("core: %d nodes for a %d-base reference leaves empty slices", size, L)
	}
	lo, hi := GenomeSlice(L, size, rank)
	// Index an extended slice so boundary-straddling reads are found;
	// ownership of a location is decided by its seed start.
	maxReadLen := 0
	for _, rd := range reads {
		if len(rd.Seq) > maxReadLen {
			maxReadLen = len(rd.Seq)
		}
	}
	ext := maxReadLen + cfg.Pad + 1
	idxLo, idxHi := lo-ext, hi+ext
	if idxLo < 0 {
		idxLo = 0
	}
	if idxHi > L {
		idxHi = L
	}
	eng, err := newEngineSlice(ref, idxLo, idxHi, cfg)
	if err != nil {
		return nil, 0, 0, st, err
	}
	eng.ownLo, eng.ownHi = lo, hi

	// Genome-split drives one serial mapper per rank (the Allreduce
	// rounds are the bottleneck, not lock contention), so the striped
	// accumulator is always the right layout here.
	acc, err := genome.New(mode, hi-lo)
	if err != nil {
		return nil, 0, 0, st, err
	}
	m, err := eng.newMapper()
	if err != nil {
		return nil, 0, 0, st, err
	}
	spills := make(map[int]spillBatch) // destination rank -> flattened

	for base := 0; base < len(reads); base += GenomeSplitBatch {
		end := base + GenomeSplitBatch
		if end > len(reads) {
			end = len(reads)
		}
		b := end - base
		// Phase 1: local alignment of the batch.
		batchLocs := make([][]location, b)
		localMax := make([]float64, b)
		for i := range localMax {
			localMax[i] = math.Inf(-1)
		}
		for i := 0; i < b; i++ {
			var tRead time.Time
			if m.met != nil {
				tRead = time.Now()
			}
			locs, err := m.mapRead(reads[base+i])
			if err != nil {
				return nil, 0, 0, st, err
			}
			if m.met != nil {
				m.met.readSec.ObserveDuration(time.Since(tRead))
			}
			// mapRead's result — including every contribs slice, which
			// is carved from the mapper's reusable arena — aliases the
			// mapper and dies at its next call; deep-copy into one
			// batch-lived backing array.
			cp := make([]location, len(locs))
			copy(cp, locs)
			nvec := 0
			for _, l := range locs {
				nvec += len(l.contribs)
			}
			backing := make([]genome.Vec, nvec)
			off := 0
			for j := range cp {
				n := copy(backing[off:off+len(cp[j].contribs)], cp[j].contribs)
				cp[j].contribs = backing[off : off+n : off+n]
				off += n
			}
			batchLocs[i] = cp
			for _, l := range cp {
				if l.logLik > localMax[i] {
					localMax[i] = l.logLik
				}
			}
		}
		// Phase 2: global normalization (distributed log-sum-exp).
		gmaxAny, err := c.Allreduce(localMax, cluster.MaxFloat64s)
		if err != nil {
			return nil, 0, 0, st, err
		}
		gmax := gmaxAny.([]float64)
		localSum := make([]float64, b)
		for i := 0; i < b; i++ {
			if math.IsInf(gmax[i], -1) {
				continue
			}
			for _, l := range batchLocs[i] {
				localSum[i] += math.Exp(l.logLik - gmax[i])
			}
		}
		gsumAny, err := c.Allreduce(localSum, cluster.SumFloat64s)
		if err != nil {
			return nil, 0, 0, st, err
		}
		gsum := gsumAny.([]float64)
		// Phase 2b: survivor-mass round. The shared-memory engine
		// renormalizes the weights surviving the MinPosterior threshold
		// so each mapped read deposits unit mass; mirroring that needs
		// the *global* surviving mass, hence a third Allreduce.
		localSurv := make([]float64, b)
		if !cfg.BestHitOnly {
			for i := 0; i < b; i++ {
				if math.IsInf(gmax[i], -1) || gsum[i] <= 0 {
					continue
				}
				for _, l := range batchLocs[i] {
					if w := math.Exp(l.logLik-gmax[i]) / gsum[i]; w >= cfg.MinPosterior {
						localSurv[i] += w
					}
				}
			}
		}
		gsurvAny, err := c.Allreduce(localSurv, cluster.SumFloat64s)
		if err != nil {
			return nil, 0, 0, st, err
		}
		gsurv := gsurvAny.([]float64)
		// Phase 3: apply weighted contributions; spill out-of-range
		// positions to their owners.
		for i := 0; i < b; i++ {
			if rank == 0 { // read-level stats counted once globally
				if math.IsInf(gmax[i], -1) || gsum[i] <= 0 {
					st.Unmapped++
				} else {
					st.Mapped++
				}
			}
			for _, l := range batchLocs[i] {
				var w float64
				if cfg.BestHitOnly {
					if l.logLik == gmax[i] {
						w = 1
					}
				} else if gsum[i] > 0 {
					w = math.Exp(l.logLik-gmax[i]) / gsum[i]
					if w < cfg.MinPosterior {
						w = 0
					} else if gsurv[i] > 0 && gsurv[i] < 1 {
						w /= gsurv[i]
					}
				}
				if w == 0 {
					continue
				}
				st.Locations++
				applySliceContribution(acc, lo, hi, L, size, l, w, spills)
			}
		}
	}
	// The genome-split path drives mapRead directly rather than going
	// through MapReads, so mirror its read-level metric accounting here
	// (local counts: mapped/unmapped are nonzero only at rank 0, which
	// counts each read once globally).
	if m.met != nil {
		m.met.mapped.Add(st.Mapped)
		m.met.unmapped.Add(st.Unmapped)
		m.met.locations.Add(st.Locations)
	}
	// Boundary exchange: everyone sends every other rank its spill
	// (possibly empty), then receives.
	const spillTag = 17
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		if err := c.Send(r, spillTag, []float64(spills[r])); err != nil {
			return nil, 0, 0, st, err
		}
	}
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		v, err := c.Recv(r, spillTag)
		if err != nil {
			return nil, 0, 0, st, err
		}
		incoming := v.([]float64)
		if len(incoming)%6 != 0 {
			return nil, 0, 0, st, fmt.Errorf("core: malformed spill of %d floats from rank %d", len(incoming), r)
		}
		for off := 0; off < len(incoming); off += 6 {
			pos := int(incoming[off])
			var vec genome.Vec
			copy(vec[:], incoming[off+1:off+6])
			acc.AddRange(pos-lo, []genome.Vec{vec}, 1)
		}
	}
	// Global stats.
	sv, err := c.Allreduce([]float64{
		float64(st.Mapped), float64(st.Unmapped), float64(st.Locations),
	}, cluster.SumFloat64s)
	if err != nil {
		return nil, 0, 0, st, err
	}
	gs := sv.([]float64)
	st = Stats{Mapped: int64(gs[0]), Unmapped: int64(gs[1]), Locations: int64(gs[2])}
	return acc, lo, hi, st, nil
}

// applySliceContribution adds the in-range part of a weighted location
// to the local accumulator and buffers the rest for the owning ranks.
func applySliceContribution(acc genome.Accumulator, lo, hi, L, size int, l location, w float64, spills map[int]spillBatch) {
	start := l.windowStart
	endPos := start + len(l.contribs)
	if start >= lo && endPos <= hi {
		acc.AddRange(start-lo, l.contribs, w)
		return
	}
	// Split: in-range part via AddRange (clipped), out-of-range
	// positions spilled individually.
	acc.AddRange(start-lo, l.contribs, w)
	for k, vec := range l.contribs {
		pos := start + k
		if pos >= lo && pos < hi {
			continue
		}
		if pos < 0 || pos >= L {
			continue
		}
		owner := ownerOf(pos, L, size)
		var weighted genome.Vec
		nonzero := false
		for ch := range vec {
			weighted[ch] = vec[ch] * w
			if weighted[ch] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		sp := spills[owner]
		sp = append(sp, float64(pos))
		sp = append(sp, weighted[:]...)
		spills[owner] = sp
	}
}

// ownerOf returns the rank owning a global position under GenomeSlice.
func ownerOf(pos, L, size int) int {
	// GenomeSlice gives rank r the range [L·r/size, L·(r+1)/size); the
	// inverse is floor((pos·size + size - 1 ... )) — search locally to
	// stay exactly consistent with integer division.
	r := pos * size / L
	for r > 0 {
		lo, _ := GenomeSlice(L, size, r)
		if pos >= lo {
			break
		}
		r--
	}
	for r < size-1 {
		_, hi := GenomeSlice(L, size, r)
		if pos < hi {
			break
		}
		r++
	}
	return r
}

// Fault-tolerant read-split (coordinator protocol).
//
// The plain read-split path above assumes every rank survives: its
// collectives (Allreduce, ReduceTree) block forever on a dead peer.
// When an op timeout is configured, RunReadSplit switches to an
// explicitly coordinated protocol instead:
//
//  1. Every rank maps its 1/N read shard into a full-length local
//     accumulator, as before.
//  2. Workers send (stats, serialized state) to rank 0 and await
//     control messages. Rank 0 receives each worker's result with a
//     deadline, extending patience while the worker's heartbeats show
//     it alive (slow ≠ dead).
//  3. Any worker whose result never arrives is declared dead and its
//     *entire unacknowledged shard* is reassigned: round-robin over
//     surviving workers (falling back to rank 0 itself when none are
//     left), so every read is mapped exactly once in the merged
//     result.
//  4. Rank 0 merges all states, stamps Stats.LostRanks, and sends a
//     Done control message carrying global stats to the survivors.
//
// Rank 0 itself is not recoverable — it holds the merge — so its death
// aborts the run (workers detect it via heartbeat loss and error out).
// Fault-free FT runs merge the same per-shard accumulators as the
// plain path, so results are identical; only the merge topology
// (linear at root vs binomial tree) differs, which is exact for the
// float merges involved... up to the same reordering tolerance the
// plain path already accepts across node counts.

// ftResult is a worker's report: mapping stats for the shard it just
// mapped plus the serialized accumulator state.
type ftResult struct {
	Stats Stats
	State []byte
}

// ftCtrl is a coordinator order: either a shard reassignment
// ([Lo, Hi) of the global read slice) or Done with the global stats.
type ftCtrl struct {
	Done   bool
	Lo, Hi int
	Stats  Stats
}

// FT protocol tags (user tag space; must not collide with other
// point-to-point tags used alongside — read-split uses none).
const (
	ftResultTag = 1001
	ftCtrlTag   = 1002
)

// ftMaxExtensions bounds how many deadline extensions a patient
// receive grants a peer whose heartbeats still arrive.
const ftMaxExtensions = 40

// mergeStateInto deserializes a peer's accumulator state and merges it
// into dst.
func mergeStateInto(dst genome.Accumulator, mode genome.Mode, refLen int, state []byte) error {
	tmp, err := genome.New(mode, refLen)
	if err != nil {
		return err
	}
	if err := tmp.(genome.Stateful).LoadStateBytes(state); err != nil {
		return err
	}
	return dst.Merge(tmp)
}

// runReadSplitFT is the deadline- and failure-aware read-split path.
func runReadSplitFT(c *cluster.Comm, ref *genome.Reference, reads []*fastq.Read, mode genome.Mode, cfg Config) (genome.Accumulator, Stats, error) {
	var st Stats
	eng, err := NewEngine(ref, cfg)
	if err != nil {
		return nil, st, err
	}
	// The FT protocol serializes and re-serializes accumulator state
	// around every reassignment; it stays on the striped layout so each
	// report is a single State() with no shard bookkeeping in between.
	acc, err := genome.New(mode, ref.Len())
	if err != nil {
		return nil, st, err
	}
	if _, ok := acc.(genome.Stateful); !ok {
		return nil, st, fmt.Errorf("core: accumulator mode %v is not transportable", mode)
	}
	lo, hi := readShard(len(reads), c.Size(), c.Rank())
	local, err := eng.MapReads(reads[lo:hi], acc, 0)
	if err != nil {
		return nil, st, err
	}
	if c.Rank() != 0 {
		wst, err := ftWorker(c, eng, acc, mode, ref.Len(), reads, local)
		return nil, wst, err
	}
	return ftCoordinator(c, eng, acc, mode, ref.Len(), reads, local)
}

// ftWorker reports the local shard result to rank 0, then serves
// reassignment orders until Done (or until rank 0 is lost). The
// returned Stats are the global ones carried by the Done message.
func ftWorker(c *cluster.Comm, eng *Engine, acc genome.Accumulator, mode genome.Mode, refLen int, reads []*fastq.Read, local Stats) (Stats, error) {
	var st Stats
	state, err := acc.(genome.Stateful).State()
	if err != nil {
		return st, err
	}
	if err := c.Send(0, ftResultTag, ftResult{Stats: local, State: state}); err != nil {
		return st, fmt.Errorf("rank %d: report result: %w", c.Rank(), err)
	}
	for {
		v, err := c.RecvPatient(0, ftCtrlTag, c.OpTimeout(), ftMaxExtensions)
		if err != nil {
			return st, fmt.Errorf("rank %d: await control: %w", c.Rank(), err)
		}
		ctrl, ok := v.(ftCtrl)
		if !ok {
			return st, fmt.Errorf("rank %d: unexpected control payload %T", c.Rank(), v)
		}
		if ctrl.Done {
			return ctrl.Stats, nil
		}
		// Reassigned shard: map it into a fresh accumulator so the
		// report carries exactly this shard's contributions.
		sub, err := genome.New(mode, refLen)
		if err != nil {
			return st, err
		}
		sst, err := eng.MapReads(reads[ctrl.Lo:ctrl.Hi], sub, 0)
		if err != nil {
			return st, err
		}
		sstate, err := sub.(genome.Stateful).State()
		if err != nil {
			return st, err
		}
		if err := c.Send(0, ftResultTag, ftResult{Stats: sst, State: sstate}); err != nil {
			return st, fmt.Errorf("rank %d: report reassigned result: %w", c.Rank(), err)
		}
	}
}

// ftCoordinator collects worker results with deadlines, reassigns dead
// workers' shards, merges everything, and distributes global stats.
func ftCoordinator(c *cluster.Comm, eng *Engine, acc genome.Accumulator, mode genome.Mode, refLen int, reads []*fastq.Read, st Stats) (genome.Accumulator, Stats, error) {
	type shard struct{ lo, hi int }
	var survivors []int // surviving workers, in ack order
	var lost []int
	var orphaned []shard

	collect := func(r int) error {
		v, err := c.RecvPatient(r, ftResultTag, c.OpTimeout(), ftMaxExtensions)
		if err != nil {
			return err
		}
		res, ok := v.(ftResult)
		if !ok {
			return fmt.Errorf("rank 0: unexpected result payload %T from rank %d", v, r)
		}
		if err := mergeStateInto(acc, mode, refLen, res.State); err != nil {
			return err
		}
		st.add(res.Stats)
		return nil
	}

	for r := 1; r < c.Size(); r++ {
		if err := collect(r); err != nil {
			if isCommLoss(err) {
				slo, shi := readShard(len(reads), c.Size(), r)
				lost = append(lost, r)
				orphaned = append(orphaned, shard{slo, shi})
				continue
			}
			return nil, st, err
		}
		survivors = append(survivors, r)
	}

	// Reassign orphaned shards round-robin over survivors; rank 0 maps
	// anything left itself, so the queue always drains.
	next := 0
	for len(orphaned) > 0 {
		sh := orphaned[0]
		orphaned = orphaned[1:]
		if len(survivors) == 0 {
			sst, err := eng.MapReads(reads[sh.lo:sh.hi], acc, 0)
			if err != nil {
				return nil, st, err
			}
			st.add(sst)
			continue
		}
		w := survivors[next%len(survivors)]
		next++
		err := c.Send(w, ftCtrlTag, ftCtrl{Lo: sh.lo, Hi: sh.hi})
		if err == nil {
			err = collect(w)
		}
		if err != nil {
			if isCommLoss(err) {
				// The survivor died mid-reassignment: drop it and requeue
				// the shard for the remaining ranks (or rank 0).
				survivors = removeRank(survivors, w)
				lost = append(lost, w)
				orphaned = append(orphaned, sh)
				continue
			}
			return nil, st, err
		}
	}

	st.LostRanks = unionRanks(st.LostRanks, lost)
	for _, w := range survivors {
		// A survivor that dies right here misses only the Done message;
		// ignore the failure rather than aborting a finished run.
		_ = c.Send(w, ftCtrlTag, ftCtrl{Done: true, Stats: st})
	}
	return acc, st, nil
}

// isCommLoss classifies errors that mean "the peer is gone or
// unreachable" — grounds for reassignment rather than abort.
func isCommLoss(err error) bool {
	return errors.Is(err, cluster.ErrTimeout) ||
		errors.Is(err, cluster.ErrRankDead) ||
		errors.Is(err, cluster.ErrCrashed) ||
		errors.Is(err, cluster.ErrClosed)
}

// removeRank drops rank w from a slice of ranks.
func removeRank(ranks []int, w int) []int {
	out := ranks[:0]
	for _, r := range ranks {
		if r != w {
			out = append(out, r)
		}
	}
	return out
}
