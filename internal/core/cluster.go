package core

import (
	"fmt"
	"math"

	"gnumap/internal/cluster"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

// The paper's two MPI modes (§VI Step 1):
//
//   - Read-split ("shared memory" in Figure 4): every node holds the
//     whole genome and accumulator, maps a 1/N shard of the reads, and
//     the accumulators are reduced to the root at the end. Minimal
//     communication, maximal memory.
//
//   - Genome-split ("spread memory" in Figure 4): every node holds a
//     1/N slice of the genome and accumulator, and every node maps all
//     reads against its slice. Posterior-location normalization needs
//     the *global* likelihood mass of each read, so nodes exchange
//     per-read likelihood sums every batch (three Allreduce rounds: a
//     max and a sum giving a distributed log-sum-exp, then a
//     survivor-mass sum so post-threshold renormalization matches the
//     shared-memory engine). Alignments
//     spilling over a slice boundary route their out-of-range
//     contributions to the owning node point-to-point at the end.
//     Minimal memory, more communication — which is why the paper's
//     Figure 4 shows it processing fewer sequences per second.

// readShard returns rank r's contiguous shard of n items.
func readShard(n, size, r int) (lo, hi int) {
	lo = n * r / size
	hi = n * (r + 1) / size
	return lo, hi
}

// RunReadSplit executes read-split mapping on one cluster node. Every
// rank maps its shard of reads against the full reference into a local
// full-length accumulator; accumulators are then reduced to rank 0. The
// returned accumulator is the merged result at rank 0 and nil
// elsewhere; the returned Stats are global on every rank.
func RunReadSplit(c *cluster.Comm, ref *genome.Reference, reads []*fastq.Read, mode genome.Mode, cfg Config) (genome.Accumulator, Stats, error) {
	var st Stats
	eng, err := NewEngine(ref, cfg)
	if err != nil {
		return nil, st, err
	}
	acc, err := genome.New(mode, ref.Len())
	if err != nil {
		return nil, st, err
	}
	lo, hi := readShard(len(reads), c.Size(), c.Rank())
	local, err := eng.MapReads(reads[lo:hi], acc, 0)
	if err != nil {
		return nil, st, err
	}
	// Global stats.
	sv, err := c.Allreduce([]float64{
		float64(local.Mapped), float64(local.Unmapped), float64(local.Locations),
	}, cluster.SumFloat64s)
	if err != nil {
		return nil, st, err
	}
	gs := sv.([]float64)
	st = Stats{Mapped: int64(gs[0]), Unmapped: int64(gs[1]), Locations: int64(gs[2])}

	// Reduce accumulator state to rank 0. Serialized states travel as
	// messages (the paper's "communicate the state of their genome"),
	// folded along a binomial tree so the merge work is distributed
	// across ranks instead of serializing at the root.
	stateful, ok := acc.(genome.Stateful)
	if !ok {
		return nil, st, fmt.Errorf("core: accumulator mode %v is not transportable", mode)
	}
	data, err := stateful.State()
	if err != nil {
		return nil, st, err
	}
	mergeStates := func(a, b any) (any, error) {
		left, err := genome.New(mode, ref.Len())
		if err != nil {
			return nil, err
		}
		if err := left.(genome.Stateful).LoadStateBytes(a.([]byte)); err != nil {
			return nil, err
		}
		right, err := genome.New(mode, ref.Len())
		if err != nil {
			return nil, err
		}
		if err := right.(genome.Stateful).LoadStateBytes(b.([]byte)); err != nil {
			return nil, err
		}
		if err := left.Merge(right); err != nil {
			return nil, err
		}
		return left.(genome.Stateful).State()
	}
	merged, err := c.ReduceTree(0, data, mergeStates)
	if err != nil {
		return nil, st, err
	}
	if c.Rank() != 0 {
		return nil, st, nil
	}
	if err := stateful.LoadStateBytes(merged.([]byte)); err != nil {
		return nil, st, err
	}
	return acc, st, nil
}

// GenomeSlice returns the [lo, hi) slice of the reference owned by a
// rank in genome-split mode.
func GenomeSlice(refLen, size, rank int) (lo, hi int) {
	return readShard(refLen, size, rank)
}

// spillBatch flattens boundary-crossing contributions for transport:
// groups of 6 float64s (position, five channel values), weight already
// applied.
type spillBatch []float64

// GenomeSplitBatch is the number of reads per genome-split
// normalization round: each batch costs three Allreduce collectives (a
// max, a sum, and a post-threshold survivor-mass sum, each over one
// float64 per read). Exported so the performance model in
// internal/experiments can count collective rounds.
const GenomeSplitBatch = 256

// RunGenomeSplit executes genome-split mapping on one cluster node.
// Every rank maps *all* reads against its genome slice; per-read
// location posteriors are normalized globally via per-batch Allreduce
// (log-sum-exp split into a max round and a sum round), and
// contributions spilling outside the slice are routed to their owning
// rank at the end. Returns the local slice accumulator, the owned
// range, and global Stats.
func RunGenomeSplit(c *cluster.Comm, ref *genome.Reference, reads []*fastq.Read, mode genome.Mode, cfg Config) (genome.Accumulator, int, int, Stats, error) {
	var st Stats
	cfg = cfg.withDefaults()
	size, rank := c.Size(), c.Rank()
	L := ref.Len()
	// Validate globally-visible conditions identically on every rank:
	// SPMD code must not have one rank error out of a collective while
	// the others enter it.
	if L < size {
		return nil, 0, 0, st, fmt.Errorf("core: %d nodes for a %d-base reference leaves empty slices", size, L)
	}
	lo, hi := GenomeSlice(L, size, rank)
	// Index an extended slice so boundary-straddling reads are found;
	// ownership of a location is decided by its seed start.
	maxReadLen := 0
	for _, rd := range reads {
		if len(rd.Seq) > maxReadLen {
			maxReadLen = len(rd.Seq)
		}
	}
	ext := maxReadLen + cfg.Pad + 1
	idxLo, idxHi := lo-ext, hi+ext
	if idxLo < 0 {
		idxLo = 0
	}
	if idxHi > L {
		idxHi = L
	}
	eng, err := newEngineSlice(ref, idxLo, idxHi, cfg)
	if err != nil {
		return nil, 0, 0, st, err
	}
	eng.ownLo, eng.ownHi = lo, hi

	acc, err := genome.New(mode, hi-lo)
	if err != nil {
		return nil, 0, 0, st, err
	}
	m, err := eng.newMapper()
	if err != nil {
		return nil, 0, 0, st, err
	}
	spills := make(map[int]spillBatch) // destination rank -> flattened

	for base := 0; base < len(reads); base += GenomeSplitBatch {
		end := base + GenomeSplitBatch
		if end > len(reads) {
			end = len(reads)
		}
		b := end - base
		// Phase 1: local alignment of the batch.
		batchLocs := make([][]location, b)
		localMax := make([]float64, b)
		for i := range localMax {
			localMax[i] = math.Inf(-1)
		}
		for i := 0; i < b; i++ {
			locs, err := m.mapRead(reads[base+i])
			if err != nil {
				return nil, 0, 0, st, err
			}
			// mapRead's result — including every contribs slice, which
			// is carved from the mapper's reusable arena — aliases the
			// mapper and dies at its next call; deep-copy into one
			// batch-lived backing array.
			cp := make([]location, len(locs))
			copy(cp, locs)
			nvec := 0
			for _, l := range locs {
				nvec += len(l.contribs)
			}
			backing := make([]genome.Vec, nvec)
			off := 0
			for j := range cp {
				n := copy(backing[off:off+len(cp[j].contribs)], cp[j].contribs)
				cp[j].contribs = backing[off : off+n : off+n]
				off += n
			}
			batchLocs[i] = cp
			for _, l := range cp {
				if l.logLik > localMax[i] {
					localMax[i] = l.logLik
				}
			}
		}
		// Phase 2: global normalization (distributed log-sum-exp).
		gmaxAny, err := c.Allreduce(localMax, cluster.MaxFloat64s)
		if err != nil {
			return nil, 0, 0, st, err
		}
		gmax := gmaxAny.([]float64)
		localSum := make([]float64, b)
		for i := 0; i < b; i++ {
			if math.IsInf(gmax[i], -1) {
				continue
			}
			for _, l := range batchLocs[i] {
				localSum[i] += math.Exp(l.logLik - gmax[i])
			}
		}
		gsumAny, err := c.Allreduce(localSum, cluster.SumFloat64s)
		if err != nil {
			return nil, 0, 0, st, err
		}
		gsum := gsumAny.([]float64)
		// Phase 2b: survivor-mass round. The shared-memory engine
		// renormalizes the weights surviving the MinPosterior threshold
		// so each mapped read deposits unit mass; mirroring that needs
		// the *global* surviving mass, hence a third Allreduce.
		localSurv := make([]float64, b)
		if !cfg.BestHitOnly {
			for i := 0; i < b; i++ {
				if math.IsInf(gmax[i], -1) || gsum[i] <= 0 {
					continue
				}
				for _, l := range batchLocs[i] {
					if w := math.Exp(l.logLik-gmax[i]) / gsum[i]; w >= cfg.MinPosterior {
						localSurv[i] += w
					}
				}
			}
		}
		gsurvAny, err := c.Allreduce(localSurv, cluster.SumFloat64s)
		if err != nil {
			return nil, 0, 0, st, err
		}
		gsurv := gsurvAny.([]float64)
		// Phase 3: apply weighted contributions; spill out-of-range
		// positions to their owners.
		for i := 0; i < b; i++ {
			if rank == 0 { // read-level stats counted once globally
				if math.IsInf(gmax[i], -1) || gsum[i] <= 0 {
					st.Unmapped++
				} else {
					st.Mapped++
				}
			}
			for _, l := range batchLocs[i] {
				var w float64
				if cfg.BestHitOnly {
					if l.logLik == gmax[i] {
						w = 1
					}
				} else if gsum[i] > 0 {
					w = math.Exp(l.logLik-gmax[i]) / gsum[i]
					if w < cfg.MinPosterior {
						w = 0
					} else if gsurv[i] > 0 && gsurv[i] < 1 {
						w /= gsurv[i]
					}
				}
				if w == 0 {
					continue
				}
				st.Locations++
				applySliceContribution(acc, lo, hi, L, size, l, w, spills)
			}
		}
	}
	// Boundary exchange: everyone sends every other rank its spill
	// (possibly empty), then receives.
	const spillTag = 17
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		if err := c.Send(r, spillTag, []float64(spills[r])); err != nil {
			return nil, 0, 0, st, err
		}
	}
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		v, err := c.Recv(r, spillTag)
		if err != nil {
			return nil, 0, 0, st, err
		}
		incoming := v.([]float64)
		if len(incoming)%6 != 0 {
			return nil, 0, 0, st, fmt.Errorf("core: malformed spill of %d floats from rank %d", len(incoming), r)
		}
		for off := 0; off < len(incoming); off += 6 {
			pos := int(incoming[off])
			var vec genome.Vec
			copy(vec[:], incoming[off+1:off+6])
			acc.AddRange(pos-lo, []genome.Vec{vec}, 1)
		}
	}
	// Global stats.
	sv, err := c.Allreduce([]float64{
		float64(st.Mapped), float64(st.Unmapped), float64(st.Locations),
	}, cluster.SumFloat64s)
	if err != nil {
		return nil, 0, 0, st, err
	}
	gs := sv.([]float64)
	st = Stats{Mapped: int64(gs[0]), Unmapped: int64(gs[1]), Locations: int64(gs[2])}
	return acc, lo, hi, st, nil
}

// applySliceContribution adds the in-range part of a weighted location
// to the local accumulator and buffers the rest for the owning ranks.
func applySliceContribution(acc genome.Accumulator, lo, hi, L, size int, l location, w float64, spills map[int]spillBatch) {
	start := l.windowStart
	endPos := start + len(l.contribs)
	if start >= lo && endPos <= hi {
		acc.AddRange(start-lo, l.contribs, w)
		return
	}
	// Split: in-range part via AddRange (clipped), out-of-range
	// positions spilled individually.
	acc.AddRange(start-lo, l.contribs, w)
	for k, vec := range l.contribs {
		pos := start + k
		if pos >= lo && pos < hi {
			continue
		}
		if pos < 0 || pos >= L {
			continue
		}
		owner := ownerOf(pos, L, size)
		var weighted genome.Vec
		nonzero := false
		for ch := range vec {
			weighted[ch] = vec[ch] * w
			if weighted[ch] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		sp := spills[owner]
		sp = append(sp, float64(pos))
		sp = append(sp, weighted[:]...)
		spills[owner] = sp
	}
}

// ownerOf returns the rank owning a global position under GenomeSlice.
func ownerOf(pos, L, size int) int {
	// GenomeSlice gives rank r the range [L·r/size, L·(r+1)/size); the
	// inverse is floor((pos·size + size - 1 ... )) — search locally to
	// stay exactly consistent with integer division.
	r := pos * size / L
	for r > 0 {
		lo, _ := GenomeSlice(L, size, r)
		if pos >= lo {
			break
		}
		r--
	}
	for r < size-1 {
		_, hi := GenomeSlice(L, size, r)
		if pos < hi {
			break
		}
		r++
	}
	return r
}
