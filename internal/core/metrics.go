package core

import (
	"encoding/gob"
	"fmt"
	"sort"

	"gnumap/internal/cluster"
	"gnumap/internal/obs"
)

func init() {
	gob.Register(obs.Snapshot{})
}

// ftMetricsTag carries per-rank metric snapshots to rank 0 at the end
// of a run. It sits in the FT control tag block (1001/1002), clear of
// the genome-split spill tag (17).
const ftMetricsTag = 1003

// GatherMetrics collects every rank's metrics snapshot at rank 0. With
// no op timeout configured it is a plain Gather (every rank must call
// it). With deadlines configured it is failure-aware: workers fire
// their snapshot at rank 0 and return; rank 0 waits patiently for each
// worker, classifying communication loss as a dead rank rather than an
// error — a degraded run still yields a report covering the survivors.
//
// At rank 0 the returned snapshots are the ones received (always
// including rank 0's own) and dead lists the ranks whose snapshots
// never arrived; elsewhere both are nil.
func GatherMetrics(c *cluster.Comm, snap obs.Snapshot) (snaps []obs.Snapshot, dead []int, err error) {
	if c.OpTimeout() <= 0 {
		vals, err := c.Gather(0, snap)
		if err != nil {
			return nil, nil, err
		}
		if c.Rank() != 0 {
			return nil, nil, nil
		}
		for r, v := range vals {
			s, ok := v.(obs.Snapshot)
			if !ok {
				return nil, nil, fmt.Errorf("core: rank %d sent metrics payload %T", r, v)
			}
			snaps = append(snaps, s)
		}
		return snaps, nil, nil
	}
	if c.Rank() != 0 {
		// Best-effort: a dying coordinator must not turn a finished
		// worker's run into an error over a metrics report.
		_ = c.Send(0, ftMetricsTag, snap)
		return nil, nil, nil
	}
	snaps = append(snaps, snap)
	for r := 1; r < c.Size(); r++ {
		v, err := c.RecvPatient(r, ftMetricsTag, c.OpTimeout(), ftMaxExtensions)
		if err != nil {
			if isCommLoss(err) {
				dead = append(dead, r)
				continue
			}
			return nil, nil, err
		}
		s, ok := v.(obs.Snapshot)
		if !ok {
			return nil, nil, fmt.Errorf("core: rank %d sent metrics payload %T", r, v)
		}
		snaps = append(snaps, s)
	}
	sort.Ints(dead)
	return snaps, dead, nil
}
