package core

import (
	"math"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/lrt"
	"gnumap/internal/phmm"
	"gnumap/internal/simulate"
	"gnumap/internal/snp"
)

// simPipeline builds a simulated dataset, runs the engine, and returns
// everything needed for assertions.
type pipeline struct {
	ref   *genome.Reference
	cat   []simulate.SNP
	reads []*fastq.Read
}

func makePipeline(t *testing.T, length, nSNPs int, coverage float64, seed int64) *pipeline {
	t.Helper()
	g, err := simulate.Genome(simulate.GenomeConfig{Length: length, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{Count: nSNPs, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := simulate.Mutate(g, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{Length: 62, Coverage: coverage, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := genome.NewSingleContig("chrE", g)
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{ref: ref, cat: cat, reads: reads}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, Config{}); err == nil {
		t.Error("nil reference accepted")
	}
	ref, _ := genome.NewSingleContig("x", dna.MustParseSeq("ACGTACGTACGTACGT"))
	if _, err := newEngineSlice(ref, 8, 4, Config{}); err == nil {
		t.Error("inverted slice accepted")
	}
	if _, err := newEngineSlice(ref, 0, 100, Config{}); err == nil {
		t.Error("oversized slice accepted")
	}
	bad := Config{}
	bad.PHMM.TMM = 0.5 // non-zero but invalid parameter set
	if _, err := NewEngine(ref, bad); err == nil {
		t.Error("invalid PHMM params accepted")
	}
}

func TestMapReadsNilAccumulator(t *testing.T) {
	p := makePipeline(t, 5000, 1, 1, 7)
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MapReads(p.reads, nil, 0); err == nil {
		t.Error("nil accumulator accepted")
	}
}

func TestEndToEndSNPRecovery(t *testing.T) {
	p := makePipeline(t, 60000, 6, 12, 11)
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.MapReads(p.reads, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped < int64(len(p.reads)*9/10) {
		t.Fatalf("only %d/%d reads mapped", st.Mapped, len(p.reads))
	}
	calls, _, err := snp.CallAll(p.ref, acc, snp.Config{Ploidy: lrt.Monoploid})
	if err != nil {
		t.Fatal(err)
	}
	m := snp.Evaluate(calls, p.cat)
	if m.TP < len(p.cat)-1 {
		t.Errorf("recovered %d/%d SNPs (FP=%d)", m.TP, len(p.cat), m.FP)
	}
	if m.Precision() < 0.7 {
		t.Errorf("precision = %v (TP=%d FP=%d)", m.Precision(), m.TP, m.FP)
	}
}

func TestMalformedReadsAreUnmappedNotFatal(t *testing.T) {
	p := makePipeline(t, 5000, 1, 1, 13)
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := genome.New(genome.Norm, p.ref.Len())
	bad := []*fastq.Read{
		{Name: "empty"},
		{Name: "mismatched", Seq: dna.MustParseSeq("ACGT"), Qual: []uint8{30}},
	}
	st, err := eng.MapReads(bad, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unmapped != 2 || st.Mapped != 0 {
		t.Errorf("stats = %+v, want 2 unmapped", st)
	}
}

func TestMultiMappedReadContributesToBothCopies(t *testing.T) {
	// Two identical 300-bp blocks: a read from one block must spread
	// its contribution across both locations (the paper's marginal
	// multi-mapping), unlike BestHitOnly.
	g, err := simulate.Genome(simulate.GenomeConfig{Length: 10000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	copy(g[6000:6300], g[2000:2300])
	ref, err := genome.NewSingleContig("dup", g)
	if err != nil {
		t.Fatal(err)
	}
	qual := make([]uint8, 62)
	for i := range qual {
		qual[i] = 30
	}
	rd := &fastq.Read{Name: "dup", Seq: g[2100 : 2100+62].Clone(), Qual: qual}

	eng, err := NewEngine(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := genome.New(genome.Norm, ref.Len())
	st, err := eng.MapReads([]*fastq.Read{rd}, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped != 1 || st.Locations < 2 {
		t.Fatalf("stats = %+v, want 1 read at >=2 locations", st)
	}
	t1, t2 := acc.Total(2130), acc.Total(6130)
	if t1 < 0.3 || t2 < 0.3 {
		t.Errorf("copy totals %v / %v, want ~0.5 each", t1, t2)
	}
	if math.Abs(t1-t2) > 0.2 {
		t.Errorf("weights unbalanced across identical copies: %v vs %v", t1, t2)
	}

	// BestHitOnly ablation: all mass on a single copy.
	engBest, err := NewEngine(ref, Config{BestHitOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	accBest, _ := genome.New(genome.Norm, ref.Len())
	if _, err := engBest.MapReads([]*fastq.Read{rd}, accBest, 0); err != nil {
		t.Fatal(err)
	}
	b1, b2 := accBest.Total(2130), accBest.Total(6130)
	if math.Min(b1, b2) > 0.01 {
		t.Errorf("BestHitOnly spread mass: %v / %v", b1, b2)
	}
	if math.Max(b1, b2) < 0.9 {
		t.Errorf("BestHitOnly lost mass: %v / %v", b1, b2)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 19)
	var results []snp.Metrics
	for _, workers := range []int{1, 4} {
		eng, err := NewEngine(p.ref, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		acc, _ := genome.New(genome.Norm, p.ref.Len())
		if _, err := eng.MapReads(p.reads, acc, 0); err != nil {
			t.Fatal(err)
		}
		calls, _, err := snp.CallAll(p.ref, acc, snp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, snp.Evaluate(calls, p.cat))
	}
	if results[0] != results[1] {
		t.Errorf("worker counts disagree: %+v vs %+v", results[0], results[1])
	}
}

func TestViterbiOnlyAblationStillRecovers(t *testing.T) {
	p := makePipeline(t, 30000, 3, 12, 23)
	eng, err := NewEngine(p.ref, Config{ViterbiOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := genome.New(genome.Norm, p.ref.Len())
	st, err := eng.MapReads(p.reads, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped == 0 {
		t.Fatal("viterbi-only mapped nothing")
	}
	calls, _, err := snp.CallAll(p.ref, acc, snp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := snp.Evaluate(calls, p.cat)
	if m.TP < 2 {
		t.Errorf("viterbi-only recovered %d/%d", m.TP, len(p.cat))
	}
}

func TestGlobalModeWorks(t *testing.T) {
	p := makePipeline(t, 20000, 2, 12, 29)
	eng, err := NewEngine(p.ref, Config{AlignMode: phmm.Global})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := genome.New(genome.Norm, p.ref.Len())
	st, err := eng.MapReads(p.reads, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped < int64(len(p.reads)/2) {
		t.Fatalf("global mode mapped only %d/%d", st.Mapped, len(p.reads))
	}
	calls, _, err := snp.CallAll(p.ref, acc, snp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := snp.Evaluate(calls, p.cat)
	if m.TP < 1 {
		t.Errorf("global mode recovered %d/%d", m.TP, len(p.cat))
	}
}

func TestDiploidHetRecovery(t *testing.T) {
	g, err := simulate.Genome(simulate.GenomeConfig{Length: 40000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{Count: 4, HetFraction: 1, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := simulate.Mutate(g, cat, true)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{Length: 62, Coverage: 25, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := genome.NewSingleContig("dip", g)
	eng, err := NewEngine(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := genome.New(genome.Norm, ref.Len())
	if _, err := eng.MapReads(reads, acc, 0); err != nil {
		t.Fatal(err)
	}
	calls, _, err := snp.CallAll(ref, acc, snp.Config{Ploidy: lrt.Diploid})
	if err != nil {
		t.Fatal(err)
	}
	m := snp.Evaluate(calls, cat)
	if m.TP < 3 {
		t.Errorf("diploid recovery %d/%d (FP=%d)", m.TP, len(cat), m.FP)
	}
	hets := 0
	for _, c := range calls {
		if c.Het {
			hets++
		}
	}
	if hets < 3 {
		t.Errorf("only %d het calls for %d het sites", hets, len(cat))
	}
}

func TestAccumulatorOffsets(t *testing.T) {
	p := makePipeline(t, 20000, 2, 10, 37)
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := genome.New(genome.Norm, p.ref.Len())
	if _, err := eng.MapReads(p.reads, full, 0); err != nil {
		t.Fatal(err)
	}
	// Offset accumulator covering the second half only.
	half := p.ref.Len() / 2
	part, _ := genome.New(genome.Norm, p.ref.Len()-half)
	if _, err := eng.MapReads(p.reads, part, half); err != nil {
		t.Fatal(err)
	}
	for pos := half; pos < p.ref.Len(); pos += 997 {
		a, b := full.Total(pos), part.Total(pos-half)
		if math.Abs(a-b) > 1e-6*(1+a) {
			t.Fatalf("offset accumulation mismatch at %d: %v vs %v", pos, a, b)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Mapped: 1, Unmapped: 2, Locations: 3}
	a.add(Stats{Mapped: 10, Unmapped: 20, Locations: 30})
	if a.Mapped != 11 || a.Unmapped != 22 || a.Locations != 33 {
		t.Errorf("add = %+v", a)
	}
}

func TestCollectTrainingPairs(t *testing.T) {
	p := makePipeline(t, 30000, 2, 8, 83)
	eng, err := NewEngine(p.ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := eng.CollectTrainingPairs(p.reads[:300], 100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no training pairs from confidently mapped reads")
	}
	if len(pairs) > 100 {
		t.Errorf("max not enforced: %d pairs", len(pairs))
	}
	for i, pr := range pairs[:5] {
		if pr.X == nil || len(pr.Y) < pr.X.Len() {
			t.Errorf("pair %d malformed: window %d < read %d", i, len(pr.Y), pr.X.Len())
		}
	}
	if _, err := eng.CollectTrainingPairs(p.reads[:10], 0, 0.3); err == nil {
		t.Error("minWeight below 0.5 accepted")
	}
	// A duplicated-region read never reaches weight 0.99 and yields no
	// pair; garbage reads likewise.
	junk := make(dna.Seq, 62)
	qual := make([]uint8, 62)
	for i := range junk {
		junk[i] = dna.Code(i % 4)
		qual[i] = 30
	}
	pairs, err = eng.CollectTrainingPairs([]*fastq.Read{{Name: "j", Seq: junk, Qual: qual}}, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("garbage read produced %d training pairs", len(pairs))
	}
}
