package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gnumap/internal/cluster"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/obs"
)

// TestMapReadsStopLatch verifies that a worker failure stops the other
// workers from claiming further batches: with one poisoned read, slow
// healthy reads, and single-read batches, a latch-less pool would map
// nearly all reads before returning; the latch caps the overrun at
// roughly one in-flight batch per worker.
func TestMapReadsStopLatch(t *testing.T) {
	p := makePipeline(t, 20000, 1, 1, 31)
	const total = 200
	reads := make([]*fastq.Read, total)
	for i := range reads {
		reads[i] = p.reads[i%len(p.reads)]
	}
	eng, err := NewEngine(p.ref, Config{Workers: 4, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	var processed atomic.Int64
	boom := fmt.Errorf("poisoned read")
	eng.testMapErr = func(rd *fastq.Read) error {
		n := processed.Add(1)
		if n == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	}
	acc, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MapReads(reads, acc, 0); err != boom {
		t.Fatalf("MapReads error = %v, want the poisoned-read error", err)
	}
	if n := processed.Load(); n > total/2 {
		t.Errorf("workers processed %d/%d reads after the failure latched; stop latch not honored", n, total)
	}
}

// TestMapReadsFromMatchesMapReads checks the streaming path is
// call-identical to the slice path: same Stats and the same
// accumulated per-position mass (same float tolerance the worker pool
// already has for accumulation-order differences).
func TestMapReadsFromMatchesMapReads(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 43)
	cfg := Config{Workers: 4, Batch: 16, Queue: 2}
	eng, err := NewEngine(p.ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	wantSt, err := eng.MapReads(p.reads, want, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	gotSt, err := eng.MapReadsFrom(fastq.SliceSource(p.reads), got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotSt.Mapped != wantSt.Mapped || gotSt.Unmapped != wantSt.Unmapped || gotSt.Locations != wantSt.Locations {
		t.Errorf("stats diverge: stream %+v vs slice %+v", gotSt, wantSt)
	}
	for pos := 0; pos < p.ref.Len(); pos += 101 {
		a, b := want.Total(pos), got.Total(pos)
		if math.Abs(a-b) > 1e-3*(1+a) {
			t.Fatalf("pos %d: stream %v vs slice %v", pos, b, a)
		}
	}
}

// TestMapReadsFromMemoryBound asserts the acceptance-criteria bound via
// the observability gauge: a streaming run never holds more resident
// reads than the free list allows — (Queue + Workers) · Batch, which is
// itself ≤ Workers · Batch · Queue for the configured values.
func TestMapReadsFromMemoryBound(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 47)
	const (
		workers = 4
		batch   = 8
		queue   = 2
	)
	reg := obs.NewRegistry()
	eng, err := NewEngine(p.ref, Config{Workers: workers, Batch: batch, Queue: queue, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MapReadsFrom(fastq.SliceSource(p.reads), acc, 0); err != nil {
		t.Fatal(err)
	}
	peak := reg.Gauge("stream.peak.resident.reads").Value()
	if peak <= 0 {
		t.Fatal("peak-resident gauge never set")
	}
	if limit := float64((queue + workers) * batch); peak > limit {
		t.Errorf("peak resident reads %v exceeds free-list bound %v", peak, limit)
	}
	if limit := float64(workers * batch * queue); peak > limit {
		t.Errorf("peak resident reads %v exceeds workers*batch*queue = %v", peak, limit)
	}
	if n := reg.Counter("stream.reads").Value(); n != int64(len(p.reads)) {
		t.Errorf("stream.reads = %d, want %d", n, len(p.reads))
	}
	wantBatches := int64((len(p.reads) + batch - 1) / batch)
	if n := reg.Counter("stream.batches").Value(); n != wantBatches {
		t.Errorf("stream.batches = %d, want %d", n, wantBatches)
	}
}

// errAfterSource yields n reads then fails.
type errAfterSource struct {
	reads []*fastq.Read
	n     int
	err   error
}

func (s *errAfterSource) Next() (*fastq.Read, error) {
	if s.n <= 0 {
		return nil, s.err
	}
	s.n--
	return s.reads[s.n%len(s.reads)], nil
}

// TestMapReadsFromSourceError checks a mid-stream source failure is
// returned and terminates the run (no deadlock, no lost error).
func TestMapReadsFromSourceError(t *testing.T) {
	p := makePipeline(t, 20000, 1, 2, 53)
	boom := fmt.Errorf("disk on fire")
	src := &errAfterSource{reads: p.reads, n: 40, err: boom}
	eng, err := NewEngine(p.ref, Config{Workers: 2, Batch: 8, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.MapReadsFrom(src, acc, 0)
	if err == nil || !errorContains(err, "disk on fire") {
		t.Fatalf("MapReadsFrom error = %v, want wrapped source error", err)
	}
}

// TestMapReadsFromWorkerErrorStopsProducer checks that a worker failure
// unblocks and stops the producer even when it is parked on the free
// list or the work queue (the streaming analogue of the stop latch).
func TestMapReadsFromWorkerErrorStopsProducer(t *testing.T) {
	p := makePipeline(t, 20000, 1, 1, 59)
	const total = 400
	reads := make([]*fastq.Read, total)
	for i := range reads {
		reads[i] = p.reads[i%len(p.reads)]
	}
	eng, err := NewEngine(p.ref, Config{Workers: 2, Batch: 1, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	var processed atomic.Int64
	boom := fmt.Errorf("poisoned read")
	eng.testMapErr = func(rd *fastq.Read) error {
		n := processed.Add(1)
		if n == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	}
	acc, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var mapErr error
	go func() {
		defer close(done)
		_, mapErr = eng.MapReadsFrom(fastq.SliceSource(reads), acc, 0)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("MapReadsFrom did not return after a worker error (producer deadlock?)")
	}
	if mapErr != boom {
		t.Fatalf("MapReadsFrom error = %v, want the poisoned-read error", mapErr)
	}
	if n := processed.Load(); n > total/2 {
		t.Errorf("processed %d/%d reads after the failure latched", n, total)
	}
}

// TestMapReadsFromEmptySource: zero reads is a clean no-op.
func TestMapReadsFromEmptySource(t *testing.T) {
	p := makePipeline(t, 10000, 1, 1, 61)
	eng, err := NewEngine(p.ref, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := genome.New(genome.Norm, p.ref.Len())
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.MapReadsFrom(fastq.SliceSource(nil), acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mapped != 0 || st.Unmapped != 0 || st.Locations != 0 {
		t.Errorf("empty stream produced stats %+v", st)
	}
}

// TestRunReadSplitStreamMatchesRunReadSplit checks the dealt-shard
// cluster path reduces to the same accumulator as the pre-split slice
// path, at several node counts.
func TestRunReadSplitStreamMatchesRunReadSplit(t *testing.T) {
	p := makePipeline(t, 30000, 3, 8, 67)
	want := sharedBaseline(t, p, genome.Norm)

	for _, nodes := range []int{1, 2, 4} {
		var got genome.Accumulator
		var mu sync.Mutex
		err := cluster.Run(nodes, cluster.Channels, func(c *cluster.Comm) error {
			var src fastq.Source
			if c.Rank() == 0 {
				src = fastq.SliceSource(p.reads)
			}
			acc, st, err := RunReadSplitStream(c, p.ref, src, genome.Norm, Config{Workers: 2, Batch: 8, Queue: 2})
			if err != nil {
				return err
			}
			if st.Mapped+st.Unmapped != int64(len(p.reads)) {
				return fmt.Errorf("stats don't cover all reads: %+v", st)
			}
			if c.Rank() == 0 {
				mu.Lock()
				got = acc
				mu.Unlock()
			} else if acc != nil {
				return fmt.Errorf("non-root rank received an accumulator")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if got == nil {
			t.Fatalf("nodes=%d: no accumulator at root", nodes)
		}
		for pos := 0; pos < p.ref.Len(); pos += 501 {
			a, b := want.Total(pos), got.Total(pos)
			if math.Abs(a-b) > 1e-3*(1+a) {
				t.Fatalf("nodes=%d pos=%d: stream %v vs baseline %v", nodes, pos, b, a)
			}
		}
	}
}

// TestRunReadSplitStreamRejectsFT: the streaming path cannot replay
// shards, so a configured op deadline must be refused up front rather
// than failing mid-run.
func TestRunReadSplitStreamRejectsFT(t *testing.T) {
	p := makePipeline(t, 10000, 1, 2, 71)
	err := cluster.RunWithConfig(2, cluster.RunConfig{Kind: cluster.Channels, OpTimeout: time.Second}, func(c *cluster.Comm) error {
		var src fastq.Source
		if c.Rank() == 0 {
			src = fastq.SliceSource(p.reads)
		}
		_, _, err := RunReadSplitStream(c, p.ref, src, genome.Norm, Config{Workers: 1})
		if err == nil {
			return fmt.Errorf("fault-tolerant streaming accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func errorContains(err error, sub string) bool {
	return err != nil && strings.Contains(err.Error(), sub)
}
