package core

import (
	"reflect"
	"testing"
)

// Stats.add must union LostRanks: the old implementation summed the
// numeric fields and dropped the slice, so folding per-node stats
// together silently cleared Degraded().
func TestStatsAddUnionsLostRanks(t *testing.T) {
	cases := []struct {
		name string
		a, b Stats
		want Stats
	}{
		{
			name: "healthy plus healthy stays healthy",
			a:    Stats{Mapped: 3, Unmapped: 1, Locations: 4},
			b:    Stats{Mapped: 2, Locations: 2},
			want: Stats{Mapped: 5, Unmapped: 1, Locations: 6},
		},
		{
			name: "degraded side survives the merge",
			a:    Stats{Mapped: 1},
			b:    Stats{Mapped: 1, LostRanks: []int{2}},
			want: Stats{Mapped: 2, LostRanks: []int{2}},
		},
		{
			name: "union dedupes and sorts",
			a:    Stats{LostRanks: []int{3, 1}},
			b:    Stats{LostRanks: []int{1, 2}},
			want: Stats{LostRanks: []int{1, 2, 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a
			got.add(tc.b)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("add(%+v, %+v) = %+v, want %+v", tc.a, tc.b, got, tc.want)
			}
			if got.Degraded() != tc.want.Degraded() {
				t.Errorf("Degraded() = %v, want %v", got.Degraded(), tc.want.Degraded())
			}
		})
	}
}

func TestUnionRanksNilForEmpty(t *testing.T) {
	if got := unionRanks(nil, []int{}); got != nil {
		t.Errorf("unionRanks(nil, empty) = %v, want nil", got)
	}
}
