package core

import (
	"fmt"
	"strings"
	"time"

	"gnumap/internal/genome"
	"gnumap/internal/obs"
)

// AccumStrategy selects how mapping workers share the accumulator.
type AccumStrategy int

const (
	// AccumAuto (the default) picks sharded when there is real worker
	// parallelism and the per-worker shard copies fit the memory
	// budget, striped otherwise.
	AccumAuto AccumStrategy = iota
	// AccumStriped uses one accumulator guarded by 4096-position lock
	// stripes — the memory-tight mode (one copy of the genome state).
	AccumStriped
	// AccumSharded gives every mapping worker a private lock-free
	// shard, folded into the striped base with a parallel tree merge at
	// combine time — contention-free accumulation at the cost of one
	// genome-state copy per worker.
	AccumSharded
)

// String returns the CLI spelling of the strategy.
func (s AccumStrategy) String() string {
	switch s {
	case AccumAuto:
		return "auto"
	case AccumStriped:
		return "striped"
	case AccumSharded:
		return "sharded"
	default:
		return fmt.Sprintf("AccumStrategy(%d)", int(s))
	}
}

// ParseAccumStrategy parses the CLI spelling ("auto", "striped",
// "sharded").
func ParseAccumStrategy(s string) (AccumStrategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return AccumAuto, nil
	case "striped":
		return AccumStriped, nil
	case "sharded":
		return AccumSharded, nil
	default:
		return AccumAuto, fmt.Errorf("core: unknown accumulation strategy %q (want auto, striped or sharded)", s)
	}
}

// DefaultAccumMemBudget is the auto strategy's ceiling on total
// accumulator memory (base + per-worker shards): 1 GiB.
const DefaultAccumMemBudget = int64(1) << 30

// resolveAccumStrategy applies the auto heuristic: sharding pays only
// when several workers would otherwise contend, and costs one
// genome-state copy per worker on top of the base — so it is selected
// iff workers > 1 and (workers+1) copies fit the budget.
func resolveAccumStrategy(mode genome.Mode, length int, cfg Config) AccumStrategy {
	if cfg.Accum != AccumAuto {
		return cfg.Accum
	}
	if cfg.Workers <= 1 {
		return AccumStriped
	}
	budget := cfg.AccumMemBudget
	if budget <= 0 {
		budget = DefaultAccumMemBudget
	}
	if genome.EstimateBytes(mode, length)*int64(cfg.Workers+1) > budget {
		return AccumStriped
	}
	return AccumSharded
}

// NewAccumulator builds the accumulator the engine's worker pools will
// write through, honoring Config.Accum (with Config.AccumMemBudget
// bounding the auto heuristic). When metrics are configured, the chosen
// mode is published as the accum.mode gauge (0 = striped, 1 = sharded).
func NewAccumulator(mode genome.Mode, length int, cfg Config) (genome.Accumulator, error) {
	cfg = cfg.withDefaults()
	strategy := resolveAccumStrategy(mode, length, cfg)
	var acc genome.Accumulator
	var err error
	switch strategy {
	case AccumStriped:
		acc, err = genome.New(mode, length)
	case AccumSharded:
		acc, err = genome.NewSharded(mode, length)
	default:
		return nil, fmt.Errorf("core: unknown accumulation strategy %d", int(strategy))
	}
	if err != nil {
		return nil, err
	}
	if reg := cfg.Metrics; reg != nil {
		v := 0.0
		if strategy == AccumSharded {
			v = 1
		}
		reg.Gauge("accum.mode").Set(v)
	}
	return acc, nil
}

// CombineAccumulator folds any outstanding worker shards into the
// striped base and returns it; a plain striped accumulator passes
// through untouched. Callers must have quiesced the mapping workers
// (MapReads/MapReadsFrom have returned). The shard count and merge
// wall time are published as accum.shards / accum.merge.seconds.
func CombineAccumulator(acc genome.Accumulator, reg *obs.Registry) (genome.Accumulator, error) {
	sp, ok := acc.(genome.ShardProvider)
	if !ok {
		return acc, nil
	}
	if reg != nil {
		reg.Gauge("accum.shards").Set(float64(sp.ShardCount()))
	}
	start := time.Now()
	base, err := sp.Combine()
	if reg != nil {
		reg.Timer("accum.merge.seconds").ObserveDuration(time.Since(start))
	}
	return base, err
}
