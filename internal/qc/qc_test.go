package qc

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"gnumap/internal/dna"
	"gnumap/internal/fasta"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

func TestSummarizeReads(t *testing.T) {
	reads := []*fastq.Read{
		{Name: "a", Seq: dna.MustParseSeq("ACGT"), Qual: []uint8{10, 20, 30, 40}},
		{Name: "b", Seq: dna.MustParseSeq("GGCCNN"), Qual: []uint8{20, 20, 20, 20, 2, 2}},
		{Name: "invalid", Seq: dna.MustParseSeq("AC"), Qual: []uint8{1}}, // skipped
		nil, // skipped
	}
	st := SummarizeReads(reads)
	if st.Count != 2 || st.Bases != 10 {
		t.Fatalf("count/bases = %d/%d", st.Count, st.Bases)
	}
	if st.MinLen != 4 || st.MaxLen != 6 || st.MeanLen != 5 {
		t.Errorf("lengths: %d/%d/%v", st.MinLen, st.MaxLen, st.MeanLen)
	}
	// GC: bases ACGT GGCC (N excluded): G=3, C=3 of 8 concrete -> 0.75.
	if math.Abs(st.GC-0.75) > 1e-12 {
		t.Errorf("GC = %v", st.GC)
	}
	if st.BaseCount[dna.N] != 2 {
		t.Errorf("N count = %d", st.BaseCount[dna.N])
	}
	wantMeanQ := float64(10+20+30+40+20+20+20+20+2+2) / 10
	if math.Abs(st.MeanQuality-wantMeanQ) > 1e-9 {
		t.Errorf("mean quality = %v, want %v", st.MeanQuality, wantMeanQ)
	}
	if st.QualityHist[20] != 5 {
		t.Errorf("hist[20] = %d", st.QualityHist[20])
	}
	var buf bytes.Buffer
	if err := st.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reads:        2") {
		t.Errorf("report wrong:\n%s", buf.String())
	}
}

func TestSummarizeReadsEmpty(t *testing.T) {
	st := SummarizeReads(nil)
	if st.Count != 0 || st.MinLen != 0 || st.MeanQuality != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func mustRef(t *testing.T, seqs ...string) *genome.Reference {
	t.Helper()
	var recs []*fasta.Record
	for i, s := range seqs {
		recs = append(recs, &fasta.Record{
			Name: fmt.Sprintf("c%d", i),
			Seq:  dna.MustParseSeq(s),
		})
	}
	ref, err := genome.NewReference(recs)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestSummarizeReferenceStats(t *testing.T) {
	ref := mustRef(t, "ACGTNN", "GGGGCC")
	st := SummarizeReference(ref)
	if st.Contigs != 2 || st.Length != 12 || st.NCount != 2 {
		t.Errorf("ref stats: %+v", st)
	}
	// Concrete: ACGT + GGGGCC = 10, GC = 2+6 = 8 -> 0.8.
	if math.Abs(st.GC-0.8) > 1e-12 {
		t.Errorf("GC = %v", st.GC)
	}
	if SummarizeReference(nil).Contigs != 0 {
		t.Error("nil reference not empty")
	}
}

func TestSummarizeCoverage(t *testing.T) {
	acc, err := genome.New(genome.Norm, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Positions 0..4 get depth 5, positions 5..6 get depth 1.
	for i := 0; i < 5; i++ {
		acc.AddRange(0, []genome.Vec{{1, 0, 0, 0, 0}, {1, 0, 0, 0, 0}, {1, 0, 0, 0, 0}, {1, 0, 0, 0, 0}, {1, 0, 0, 0, 0}}, 1)
	}
	acc.AddRange(5, []genome.Vec{{0, 1, 0, 0, 0}, {0, 1, 0, 0, 0}}, 1)
	st := SummarizeCoverage(acc, 8)
	if st.Positions != 10 {
		t.Fatalf("positions = %d", st.Positions)
	}
	if math.Abs(st.MeanDepth-2.7) > 1e-9 {
		t.Errorf("mean depth = %v, want 2.7", st.MeanDepth)
	}
	if st.MaxDepth != 5 {
		t.Errorf("max depth = %v", st.MaxDepth)
	}
	if math.Abs(st.Breadth1-0.7) > 1e-9 || math.Abs(st.Breadth4-0.5) > 1e-9 || st.Breadth10 != 0 {
		t.Errorf("breadth = %v/%v/%v", st.Breadth1, st.Breadth4, st.Breadth10)
	}
	if st.Hist[0] != 3 || st.Hist[1] != 2 || st.Hist[5] != 5 {
		t.Errorf("hist = %v", st.Hist)
	}
	var buf bytes.Buffer
	if err := st.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean depth:  2.70x") {
		t.Errorf("report wrong:\n%s", buf.String())
	}
}

// TestSummarizeCoverageFractionalDepth pins the nearest-integer
// histogram convention: posterior depth is fractional, and the old
// int(d) truncation filed depth 0.9 under "0x" (while Breadth1 only
// counts d >= 1), overstating uncovered genome.
func TestSummarizeCoverageFractionalDepth(t *testing.T) {
	acc, err := genome.New(genome.Norm, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Depths: 0.9 (rounds to 1), 0.4 (rounds to 0), 1.5 (rounds to 2),
	// and 0 (untouched).
	acc.AddRange(0, []genome.Vec{{0.9, 0, 0, 0, 0}}, 1)
	acc.AddRange(1, []genome.Vec{{0.4, 0, 0, 0, 0}}, 1)
	acc.AddRange(2, []genome.Vec{{1.5, 0, 0, 0, 0}}, 1)
	st := SummarizeCoverage(acc, 8)
	if st.Hist[0] != 2 || st.Hist[1] != 1 || st.Hist[2] != 1 {
		t.Errorf("hist = %v, want [2 1 1 0 ...]", st.Hist)
	}
	// Breadth thresholds stay exact >=, unaffected by bucket rounding.
	if math.Abs(st.Breadth1-0.25) > 1e-6 {
		t.Errorf("breadth1 = %v, want 0.25", st.Breadth1)
	}
}

func TestSummarizeCoverageOverflowBucket(t *testing.T) {
	acc, _ := genome.New(genome.Norm, 2)
	for i := 0; i < 100; i++ {
		acc.AddRange(0, []genome.Vec{{1, 0, 0, 0, 0}}, 1)
	}
	st := SummarizeCoverage(acc, 8)
	if st.Hist[8] != 1 {
		t.Errorf("overflow bucket = %d", st.Hist[8])
	}
	if SummarizeCoverage(nil, 0).Positions != 0 {
		t.Error("nil accumulator not empty")
	}
}
