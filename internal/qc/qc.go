// Package qc computes the quality-control summaries a sequencing
// pipeline reports alongside its results: read-set statistics (lengths,
// quality distribution, base composition, implied error rate),
// reference statistics, and coverage statistics over a mapped
// accumulator (mean depth, breadth, depth histogram). The readsim and
// gnumap-snp commands print these so experiment inputs are auditable.
package qc

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
)

// ReadStats summarizes a read set.
type ReadStats struct {
	// Count is the number of reads; Bases the total base count.
	Count, Bases int
	// MinLen/MaxLen/MeanLen describe read lengths.
	MinLen, MaxLen int
	MeanLen        float64
	// MeanQuality is the mean Phred score over all bases; MeanError is
	// the mean per-base error probability implied by the qualities
	// (not the same thing: the Phred scale is logarithmic).
	MeanQuality, MeanError float64
	// QualityHist counts bases per Phred score.
	QualityHist [fastq.MaxQuality + 1]int64
	// BaseCount counts bases per code (A, C, G, T, N).
	BaseCount [5]int64
	// GC is the G+C fraction of concrete bases.
	GC float64
}

// SummarizeReads scans a read set. Invalid reads (length mismatch) are
// skipped rather than failing QC — QC exists to describe what is there.
func SummarizeReads(reads []*fastq.Read) ReadStats {
	st := ReadStats{MinLen: math.MaxInt}
	var qualSum, errSum float64
	for _, r := range reads {
		if r == nil || r.Validate() != nil {
			continue
		}
		st.Count++
		n := len(r.Seq)
		st.Bases += n
		if n < st.MinLen {
			st.MinLen = n
		}
		if n > st.MaxLen {
			st.MaxLen = n
		}
		for i, b := range r.Seq {
			st.BaseCount[b]++
			q := r.Qual[i]
			if q > fastq.MaxQuality {
				q = fastq.MaxQuality
			}
			st.QualityHist[q]++
			qualSum += float64(q)
			errSum += fastq.ErrorProb(q)
		}
	}
	if st.Count == 0 {
		st.MinLen = 0
		return st
	}
	st.MeanLen = float64(st.Bases) / float64(st.Count)
	st.MeanQuality = qualSum / float64(st.Bases)
	st.MeanError = errSum / float64(st.Bases)
	gc := st.BaseCount[dna.G] + st.BaseCount[dna.C]
	concrete := st.Bases - int(st.BaseCount[dna.N])
	if concrete > 0 {
		st.GC = float64(gc) / float64(concrete)
	}
	return st
}

// WriteText renders the summary as an aligned report.
func (st ReadStats) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "reads:        %d (%d bases)\n", st.Count, st.Bases)
	fmt.Fprintf(bw, "read length:  min %d, max %d, mean %.1f\n", st.MinLen, st.MaxLen, st.MeanLen)
	fmt.Fprintf(bw, "base quality: mean Q%.1f (mean error %.4f)\n", st.MeanQuality, st.MeanError)
	fmt.Fprintf(bw, "composition:  A=%d C=%d G=%d T=%d N=%d (GC %.1f%%)\n",
		st.BaseCount[0], st.BaseCount[1], st.BaseCount[2], st.BaseCount[3], st.BaseCount[4], 100*st.GC)
	return bw.Flush()
}

// RefStats summarizes a reference.
type RefStats struct {
	Contigs int
	// Length is the total contig length (spacers excluded).
	Length int
	GC     float64
	NCount int
}

// SummarizeReference scans a reference's contigs.
func SummarizeReference(ref *genome.Reference) RefStats {
	var st RefStats
	if ref == nil {
		return st
	}
	gc, concrete := 0, 0
	for _, c := range ref.Contigs() {
		st.Contigs++
		st.Length += len(c.Seq)
		for _, b := range c.Seq {
			switch {
			case b == dna.G || b == dna.C:
				gc++
				concrete++
			case b.IsConcrete():
				concrete++
			default:
				st.NCount++
			}
		}
	}
	if concrete > 0 {
		st.GC = float64(gc) / float64(concrete)
	}
	return st
}

// CoverageStats summarizes accumulated mapping depth.
type CoverageStats struct {
	// Positions is the number of accumulator positions inspected.
	Positions int
	// MeanDepth is the mean accumulated mass per position.
	MeanDepth float64
	// MaxDepth is the highest accumulated mass.
	MaxDepth float64
	// Breadth1/4/10 are the fractions of positions with accumulated
	// mass >= 1, 4, and 10 — the resequencing community's standard
	// "breadth of coverage at N×".
	Breadth1, Breadth4, Breadth10 float64
	// Hist counts positions per integer depth bucket, where a
	// position's bucket is its posterior depth rounded to the NEAREST
	// integer (half away from zero) — not truncated. Truncation put
	// every position with depth in (0, 1) in the 0x bucket, which
	// contradicted the Breadth fields' >= thresholds and made the
	// histogram's zero bucket overstate uncovered genome. The last
	// bucket collects everything at or above len(Hist)-1.
	Hist []int64
}

// SummarizeCoverage scans an accumulator. maxBucket sizes the histogram
// (default 64 when <= 0).
func SummarizeCoverage(acc genome.Accumulator, maxBucket int) CoverageStats {
	if maxBucket <= 0 {
		maxBucket = 64
	}
	st := CoverageStats{Hist: make([]int64, maxBucket+1)}
	if acc == nil {
		return st
	}
	// QC runs after mapping has quiesced; a frozen view reads the
	// accumulator without per-position lock round trips.
	total := acc.Total
	if fz, err := genome.Freeze(acc); err == nil {
		total = fz.Total
	}
	var sum float64
	var b1, b4, b10 int
	for pos := 0; pos < acc.Len(); pos++ {
		d := total(pos)
		st.Positions++
		sum += d
		if d > st.MaxDepth {
			st.MaxDepth = d
		}
		if d >= 1 {
			b1++
		}
		if d >= 4 {
			b4++
		}
		if d >= 10 {
			b10++
		}
		// Nearest-integer bucketing (see Hist doc): posterior depth is
		// fractional, and int(d) would misfile depth 0.9 as "0x".
		bucket := int(math.Round(d))
		if bucket > maxBucket {
			bucket = maxBucket
		}
		st.Hist[bucket]++
	}
	if st.Positions > 0 {
		st.MeanDepth = sum / float64(st.Positions)
		st.Breadth1 = float64(b1) / float64(st.Positions)
		st.Breadth4 = float64(b4) / float64(st.Positions)
		st.Breadth10 = float64(b10) / float64(st.Positions)
	}
	return st
}

// WriteText renders the coverage summary.
func (st CoverageStats) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "positions:   %d\n", st.Positions)
	fmt.Fprintf(bw, "mean depth:  %.2fx (max %.1fx)\n", st.MeanDepth, st.MaxDepth)
	fmt.Fprintf(bw, "breadth:     %.1f%% >=1x, %.1f%% >=4x, %.1f%% >=10x\n",
		100*st.Breadth1, 100*st.Breadth4, 100*st.Breadth10)
	return bw.Flush()
}
