package pwm

import (
	"math"
	"testing"
	"testing/quick"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
)

func newRead(t *testing.T, seq string, qual ...uint8) *fastq.Read {
	t.Helper()
	s, err := dna.ParseSeq(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(qual) != len(s) {
		t.Fatalf("test bug: %d quals for %d bases", len(qual), len(s))
	}
	return &fastq.Read{Name: "r", Seq: s, Qual: qual}
}

func TestFromReadWeights(t *testing.T) {
	r := newRead(t, "AC", 10, 20) // e = 0.1, 0.01
	m, err := FromRead(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Prob(0, dna.A); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("P(A at 0) = %g, want 0.9", got)
	}
	if got := m.Prob(0, dna.C); math.Abs(got-0.1/3) > 1e-12 {
		t.Errorf("P(C at 0) = %g, want %g", got, 0.1/3)
	}
	if got := m.Prob(1, dna.C); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("P(C at 1) = %g, want 0.99", got)
	}
}

func TestFromReadNIsUniform(t *testing.T) {
	m, err := FromRead(newRead(t, "N", 40))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < dna.NumBases; k++ {
		if got := m.Prob(0, dna.Code(k)); math.Abs(got-0.25) > 1e-12 {
			t.Errorf("P(%v) = %g, want 0.25", dna.Code(k), got)
		}
	}
}

func TestRowsSumToOneProperty(t *testing.T) {
	f := func(bases []byte, quals []byte) bool {
		n := len(bases)
		if len(quals) < n {
			n = len(quals)
		}
		if n == 0 {
			return true
		}
		seq := make(dna.Seq, n)
		q := make([]uint8, n)
		for i := 0; i < n; i++ {
			seq[i] = dna.Code(bases[i] % 5)
			q[i] = quals[i] % (fastq.MaxQuality + 1)
		}
		m, err := FromRead(&fastq.Read{Name: "p", Seq: seq, Qual: q})
		if err != nil {
			return false
		}
		for i := 0; i < m.Len(); i++ {
			sum := 0.0
			for k := 0; k < dna.NumBases; k++ {
				sum += m.Prob(i, dna.Code(k))
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromReadRejectsInvalid(t *testing.T) {
	if _, err := FromRead(&fastq.Read{Name: "x"}); err == nil {
		t.Error("empty read must be rejected")
	}
}

func TestFromSeqUniformError(t *testing.T) {
	s := dna.MustParseSeq("AG")
	m, err := FromSeqUniformError(s, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Prob(0, dna.A); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("P(A) = %g, want 0.7", got)
	}
	if got := m.Prob(1, dna.C); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("P(C) = %g, want 0.1", got)
	}
	// e=0 gives one-hot.
	m0, _ := FromSeqUniformError(s, 0)
	if m0.Prob(0, dna.A) != 1 || m0.Prob(0, dna.C) != 0 {
		t.Error("e=0 must produce one-hot rows")
	}
	if _, err := FromSeqUniformError(s, 1.0); err == nil {
		t.Error("e=1 must be rejected")
	}
	if _, err := FromSeqUniformError(s, -0.1); err == nil {
		t.Error("negative e must be rejected")
	}
}

func TestCalls(t *testing.T) {
	m, err := FromRead(newRead(t, "ACGN", 30, 30, 30, 30))
	if err != nil {
		t.Fatal(err)
	}
	if m.Call(0) != dna.A || m.Call(2) != dna.G || m.Call(3) != dna.N {
		t.Errorf("calls wrong: %v", m.Calls())
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}

func TestReverseComplement(t *testing.T) {
	m, err := FromRead(newRead(t, "AC", 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	rc := m.ReverseComplement()
	if rc.Calls().String() != "GT" {
		t.Errorf("rc calls = %q, want GT", rc.Calls().String())
	}
	// Position 0 of rc corresponds to position 1 of the original (C,
	// e=0.01) complemented to G.
	if got := rc.Prob(0, dna.G); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("rc P(G at 0) = %g, want 0.99", got)
	}
	if got := rc.Prob(1, dna.T); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("rc P(T at 1) = %g, want 0.9", got)
	}
	// Double reverse-complement is the identity.
	back := rc.ReverseComplement()
	for i := 0; i < m.Len(); i++ {
		for k := 0; k < dna.NumBases; k++ {
			if math.Abs(back.Prob(i, dna.Code(k))-m.Prob(i, dna.Code(k))) > 1e-12 {
				t.Fatalf("double RC not identity at (%d,%d)", i, k)
			}
		}
	}
}

func TestProbNonConcrete(t *testing.T) {
	m, err := FromRead(newRead(t, "A", 30))
	if err != nil {
		t.Fatal(err)
	}
	if m.Prob(0, dna.N) != 0 {
		t.Error("Prob of N must be 0")
	}
}

// TestFillReuseMatchesAllocating: the in-place Fill* methods must
// reproduce their allocating wrappers and reuse storage across calls of
// varying length without leaking previous state.
func TestFillReuseMatchesAllocating(t *testing.T) {
	var m, rc Matrix
	seqs := []string{"ACGTACGTAC", "TTNAC", "GGGGCCCCAAAATTTT", "AT"}
	for _, s := range seqs {
		qual := make([]uint8, len(s))
		for i := range qual {
			qual[i] = uint8(10 + 3*i)
		}
		rd := newRead(t, s, qual...)
		want, err := FromRead(rd)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FillFromRead(rd); err != nil {
			t.Fatal(err)
		}
		if m.Len() != want.Len() {
			t.Fatalf("%q: Len %d vs %d", s, m.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if m.Row(i) != want.Row(i) || m.Call(i) != want.Call(i) {
				t.Fatalf("%q pos %d: fill %v/%v vs alloc %v/%v",
					s, i, m.Row(i), m.Call(i), want.Row(i), want.Call(i))
			}
		}
		wantRC := want.ReverseComplement()
		rc.FillReverseComplementOf(&m)
		for i := 0; i < wantRC.Len(); i++ {
			if rc.Row(i) != wantRC.Row(i) || rc.Call(i) != wantRC.Call(i) {
				t.Fatalf("%q rc pos %d: fill %v/%v vs alloc %v/%v",
					s, i, rc.Row(i), rc.Call(i), wantRC.Row(i), wantRC.Call(i))
			}
		}
	}
	// Warm matrices must not allocate on refill.
	rd := newRead(t, "ACGTACGTAC", 20, 20, 20, 20, 20, 20, 20, 20, 20, 20)
	avg := testing.AllocsPerRun(20, func() {
		if err := m.FillFromRead(rd); err != nil {
			t.Fatal(err)
		}
		rc.FillReverseComplementOf(&m)
	})
	if avg > 0 {
		t.Errorf("warm Fill methods allocate %.1f/op, want 0", avg)
	}
}
