// Package pwm builds position-weight matrices from sequencing reads and
// their Phred quality scores.
//
// This is the entry point of the paper's probabilistic extension of the
// Pair-HMM (§VI, Step 2): instead of treating each read position as a
// single fixed nucleotide, GNUMAP-SNP represents it as a probability
// vector r_i = (r_iA, r_iC, r_iG, r_iT) over the four bases, derived
// from the sequencer's own error estimate. The PHMM's match-emission
// term then becomes p*(i,j) = Σ_k r_ik · p_{k,y_j}, so low-quality
// bases contribute weak, diffuse evidence while high-quality bases
// contribute sharp evidence.
package pwm

import (
	"fmt"

	"gnumap/internal/dna"
	"gnumap/internal/fastq"
)

// Matrix is a position-weight matrix: one probability vector over the
// four concrete bases per read position. Rows always sum to 1.
type Matrix struct {
	rows [][dna.NumBases]float64
	// calls retains the most-likely base per position (the sequencer's
	// call), used where a single representative base is needed, e.g.
	// when attributing posterior alignment mass to a nucleotide.
	calls dna.Seq
}

// FromRead converts a read into a PWM. A called base b with error
// probability e receives weight 1-e; the three alternatives split e
// evenly (the standard uniform-error channel assumption). An ambiguous
// N becomes the uniform vector regardless of its quality value.
func FromRead(r *fastq.Read) (*Matrix, error) {
	m := &Matrix{}
	if err := m.FillFromRead(r); err != nil {
		return nil, err
	}
	return m, nil
}

// FillFromRead is FromRead into an existing Matrix, reusing its
// storage — the mapper's per-read hot path, which must not allocate in
// steady state.
func (m *Matrix) FillFromRead(r *fastq.Read) error {
	if err := r.Validate(); err != nil {
		return err
	}
	m.reset(len(r.Seq))
	copy(m.calls, r.Seq)
	for i, b := range r.Seq {
		if !b.IsConcrete() {
			for k := 0; k < dna.NumBases; k++ {
				m.rows[i][k] = 1.0 / dna.NumBases
			}
			continue
		}
		e := fastq.ErrorProb(r.Qual[i])
		for k := 0; k < dna.NumBases; k++ {
			if dna.Code(k) == b {
				m.rows[i][k] = 1 - e
			} else {
				m.rows[i][k] = e / 3
			}
		}
	}
	return nil
}

// FromSeqUniformError builds a PWM from a bare sequence with a single
// flat error probability for every position. Used by baselines and by
// the ablation that disables quality weighting (e=0 reproduces the
// classical one-hot emission).
func FromSeqUniformError(s dna.Seq, e float64) (*Matrix, error) {
	m := &Matrix{}
	if err := m.FillSeqUniformError(s, e); err != nil {
		return nil, err
	}
	return m, nil
}

// FillSeqUniformError is FromSeqUniformError into an existing Matrix,
// reusing its storage.
func (m *Matrix) FillSeqUniformError(s dna.Seq, e float64) error {
	if e < 0 || e >= 1 {
		return fmt.Errorf("pwm: error probability %g out of [0,1)", e)
	}
	m.reset(len(s))
	copy(m.calls, s)
	for i, b := range s {
		if !b.IsConcrete() {
			for k := 0; k < dna.NumBases; k++ {
				m.rows[i][k] = 1.0 / dna.NumBases
			}
			continue
		}
		for k := 0; k < dna.NumBases; k++ {
			if dna.Code(k) == b {
				m.rows[i][k] = 1 - e
			} else {
				m.rows[i][k] = e / 3
			}
		}
	}
	return nil
}

// reset sizes the matrix to n positions, reusing backing arrays.
func (m *Matrix) reset(n int) {
	if cap(m.rows) < n {
		m.rows = make([][dna.NumBases]float64, n)
		m.calls = make(dna.Seq, n)
	}
	m.rows = m.rows[:n]
	m.calls = m.calls[:n]
}

// Len returns the number of positions.
func (m *Matrix) Len() int { return len(m.rows) }

// Row returns the probability vector at position i.
func (m *Matrix) Row(i int) [dna.NumBases]float64 { return m.rows[i] }

// Prob returns the probability of base k at position i.
func (m *Matrix) Prob(i int, k dna.Code) float64 {
	if !k.IsConcrete() {
		return 0
	}
	return m.rows[i][k]
}

// Call returns the sequencer's called base at position i (possibly N).
func (m *Matrix) Call(i int) dna.Code { return m.calls[i] }

// Calls returns the full called sequence (aliased, do not mutate).
func (m *Matrix) Calls() dna.Seq { return m.calls }

// ReverseComplement returns the PWM of the reverse-complement read:
// positions reversed and base weights swapped A<->T, C<->G. Mapping a
// read to the minus strand uses this matrix against the forward genome.
func (m *Matrix) ReverseComplement() *Matrix {
	out := &Matrix{}
	out.FillReverseComplementOf(m)
	return out
}

// FillReverseComplementOf is ReverseComplement into an existing Matrix
// (which must not be src itself), reusing its storage.
func (m *Matrix) FillReverseComplementOf(src *Matrix) {
	n := len(src.rows)
	m.reset(n)
	for i := 0; i < n; i++ {
		r := src.rows[n-1-i]
		m.rows[i][dna.A] = r[dna.T]
		m.rows[i][dna.T] = r[dna.A]
		m.rows[i][dna.C] = r[dna.G]
		m.rows[i][dna.G] = r[dna.C]
		m.calls[i] = src.calls[n-1-i].Complement()
	}
}
