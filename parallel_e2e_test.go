package gnumap

import (
	"reflect"
	"testing"
)

// The parallel calling sweep must be bit-identical to the serial one
// through the full cluster stack — same calls, same FDR decisions — in
// both split modes at np=1 and np=4. The two runs differ ONLY in
// Caller.CallWorkers.
func TestClusterParallelCallerDeterminism(t *testing.T) {
	ds := dataset(t)
	for _, nodes := range []int{1, 4} {
		for _, mode := range []SplitMode{ReadSplit, GenomeSplit} {
			base := Options{Engine: EngineConfig{Workers: 1}}
			base.Caller.UseFDR = true
			base.Caller.CallWorkers = 1
			want, wantSt, err := RunCluster(nodes, Channels, mode, ds.Reference, ds.Reads, base)
			if err != nil {
				t.Fatalf("np=%d %v serial: %v", nodes, mode, err)
			}
			if len(want) == 0 {
				t.Fatalf("np=%d %v: serial run found no SNPs; test is vacuous", nodes, mode)
			}

			par := base
			par.Caller.CallWorkers = 4
			par.Caller.CallChunk = 4096
			got, gotSt, err := RunCluster(nodes, Channels, mode, ds.Reference, ds.Reads, par)
			if err != nil {
				t.Fatalf("np=%d %v parallel: %v", nodes, mode, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("np=%d %v: parallel caller diverges from serial (%d vs %d calls)",
					nodes, mode, len(got), len(want))
			}
			if gotSt.Mapped != wantSt.Mapped || gotSt.Unmapped != wantSt.Unmapped {
				t.Errorf("np=%d %v: map stats diverge: %+v vs %+v", nodes, mode, gotSt, wantSt)
			}
		}
	}
}

// A sharded-accumulation pipeline must call the same variants as the
// striped one over the same reads: accumulation order changes float
// summation order, so per-position mass is tolerance-equal rather than
// bit-equal, but the planted SNPs are far from the decision boundary.
func TestPipelineShardedMatchesStriped(t *testing.T) {
	ds := dataset(t)
	run := func(strategy AccumStrategy) []SNPCall {
		t.Helper()
		opts := Options{Engine: EngineConfig{Workers: 4, Accum: strategy}}
		p, err := NewPipeline(ds.Reference, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.MapReads(ds.Reads); err != nil {
			t.Fatal(err)
		}
		calls, _, err := p.Call()
		if err != nil {
			t.Fatal(err)
		}
		return calls
	}
	striped := run(AccumStriped)
	sharded := run(AccumSharded)
	if len(striped) != len(sharded) {
		t.Fatalf("call counts diverge: striped %d vs sharded %d", len(striped), len(sharded))
	}
	for i := range striped {
		if striped[i].GlobalPos != sharded[i].GlobalPos || striped[i].Allele != sharded[i].Allele {
			t.Errorf("call %d: striped %d/%v vs sharded %d/%v", i,
				striped[i].GlobalPos, striped[i].Allele, sharded[i].GlobalPos, sharded[i].Allele)
		}
	}
	m := Evaluate(sharded, ds.Truth)
	if m.TP == 0 {
		t.Error("sharded pipeline recovered no planted SNPs")
	}
}
