package gnumap

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"gnumap/internal/kmer"
)

// vcfWith maps the dataset through a pipeline configured with opts and
// renders the calls as VCF.
func vcfWith(t *testing.T, ds *Dataset, opts Options) []byte {
	t.Helper()
	p, err := NewPipeline(ds.Reference, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	calls, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteVCF(&buf, calls); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeedIndexEndToEnd is the persistence smoke: build a large-seed
// index, persist it, mmap it back, and require byte-identical VCF
// between the fresh-built and file-loaded runs.
func TestSeedIndexEndToEnd(t *testing.T) {
	ds := dataset(t)
	const k = 18
	built, err := BuildSeedIndex(ds.Reference, k)
	if err != nil {
		t.Fatal(err)
	}
	lix, ok := built.(*LargeSeedIndex)
	if !ok {
		t.Fatalf("k=%d built %T, want *LargeSeedIndex", k, built)
	}
	path := filepath.Join(t.TempDir(), "ref.gnix")
	n, err := SaveSeedIndex(path, lix, ds.Reference)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ReadSeedIndexInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.K != k || info.FileBytes != n || info.SeqLen != 40000 {
		t.Fatalf("info = %+v", info)
	}

	var fresh Options
	fresh.Engine.SeedIndex = lix
	want := vcfWith(t, ds, fresh)

	loadedIx, err := OpenSeedIndex(path, ds.Reference)
	if err != nil {
		t.Fatal(err)
	}
	defer loadedIx.Close()
	var loaded Options
	loaded.Engine.SeedIndex = loadedIx
	reg := NewMetricsRegistry()
	loaded.Metrics = reg
	got := vcfWith(t, ds, loaded)
	if !bytes.Equal(want, got) {
		t.Fatal("VCF from the mmap-loaded index differs from the fresh build")
	}
	// The selectivity metrics must flow for the large index too.
	if reg.Counter("map.seed.hits").Value() == 0 {
		t.Error("map.seed.hits not counted")
	}
	if reg.Gauge("index.bytes").Value() <= 0 {
		t.Error("index.bytes gauge not set")
	}

	// A different reference must be refused by fingerprint.
	other, err := SimulateDataset(SimConfig{GenomeLength: 40000, SNPCount: 4, Coverage: 1, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeedIndex(path, other.Reference); !errors.Is(err, kmer.ErrRefMismatch) {
		t.Fatalf("foreign reference: err = %v, want ErrRefMismatch", err)
	}
}

// TestSeedLenConfig: Engine.K above the direct ceiling builds the large
// index inside the pipeline, and still recovers the planted SNPs.
func TestSeedLenConfig(t *testing.T) {
	ds := dataset(t)
	var opts Options
	opts.Engine.K = 20
	p, err := NewPipeline(ds.Reference, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapReads(ds.Reads); err != nil {
		t.Fatal(err)
	}
	calls, _, err := p.Call()
	if err != nil {
		t.Fatal(err)
	}
	if m := Evaluate(calls, ds.Truth); m.TP < 3 {
		t.Errorf("large-seed run recovered %d/%d SNPs", m.TP, len(ds.Truth))
	}
}

// TestSeedIndexMismatchedConfig: an index whose K or reference length
// disagrees with the pipeline must be rejected at construction.
func TestSeedIndexMismatchedConfig(t *testing.T) {
	ds := dataset(t)
	ix, err := BuildSeedIndex(ds.Reference, 16)
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.Engine.SeedIndex = ix
	opts.Engine.K = 18
	if _, err := NewPipeline(ds.Reference, opts); err == nil {
		t.Error("k mismatch accepted")
	}
	opts.Engine.K = 0 // adopt the index's K — must work
	if _, err := NewPipeline(ds.Reference, opts); err != nil {
		t.Errorf("adopting index K failed: %v", err)
	}
}
