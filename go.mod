module gnumap

go 1.22
