// Package gnumap is the public API of the GNUMAP-SNP reproduction: a
// probabilistic Pair-Hidden-Markov-Model read mapper and SNP caller
// with likelihood-ratio-test significance, parallel on shared memory
// and on a simulated message-passing cluster, with the paper's three
// accumulator memory layouts (NORM, CHARDISC, CENTDISC).
//
// # Quick start
//
//	ds, _ := gnumap.SimulateDataset(gnumap.SimConfig{GenomeLength: 100000, SNPCount: 10, Coverage: 12, Seed: 1})
//	p, _ := gnumap.NewPipeline(ds.Reference, gnumap.Options{})
//	p.MapReads(ds.Reads)
//	calls, _, _ := p.Call()
//	fmt.Println(gnumap.Evaluate(calls, ds.Truth))
//
// The heavy lifting lives in internal packages (phmm, genome, lrt,
// cluster, ...); this package wires them together and re-exports the
// types a downstream user needs.
package gnumap

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"gnumap/internal/baseline"
	"gnumap/internal/ckpt"
	"gnumap/internal/cluster"
	"gnumap/internal/core"
	"gnumap/internal/dna"
	"gnumap/internal/fasta"
	"gnumap/internal/fastq"
	"gnumap/internal/genome"
	"gnumap/internal/kmer"
	"gnumap/internal/lrt"
	"gnumap/internal/obs"
	"gnumap/internal/phmm"
	"gnumap/internal/qc"
	"gnumap/internal/simulate"
	"gnumap/internal/snp"
)

func init() {
	// Candidate batches travel rank→rank-0 inside a collective when a
	// genome-split run applies global FDR.
	gob.Register([]snp.Candidate{})
}

// Read is one sequencing read (name, bases, Phred qualities).
type Read = fastq.Read

// Contig is one named reference sequence.
type Contig = fasta.Record

// SNPCall is one called variant.
type SNPCall = snp.Call

// Metrics is the TP/FP/FN accuracy accounting against a truth set.
type Metrics = snp.Metrics

// TruthSNP is one planted variant of a simulated dataset.
type TruthSNP = simulate.SNP

// EngineConfig tunes the mapper (see internal/core.Config for fields;
// the zero value selects paper defaults).
type EngineConfig = core.Config

// MapStats counts mapping outcomes.
type MapStats = core.Stats

// CallerConfig tunes SNP calling (significance level, ploidy, FDR).
type CallerConfig = snp.Config

// CallStats summarizes a calling run.
type CallStats = snp.Stats

// MemoryMode selects the accumulator layout.
type MemoryMode = genome.Mode

// The accumulator memory layouts (paper §VI-B).
const (
	MemNorm     = genome.Norm
	MemCharDisc = genome.CharDisc
	MemCentDisc = genome.CentDisc
)

// AccumStrategy selects how parallel mapping workers write the
// accumulator: through 4096-position lock stripes on one shared copy,
// or lock-free into private per-worker shards folded by a parallel
// tree merge before the first read. Set via EngineConfig.Accum.
type AccumStrategy = core.AccumStrategy

// The accumulation strategies.
const (
	// AccumAuto picks sharded when Workers > 1 and the per-worker
	// copies fit EngineConfig.AccumMemBudget, striped otherwise.
	AccumAuto = core.AccumAuto
	// AccumStriped forces the single lock-striped accumulator.
	AccumStriped = core.AccumStriped
	// AccumSharded forces private per-worker shards.
	AccumSharded = core.AccumSharded
)

// ParseAccumStrategy parses "auto", "striped", or "sharded" (the
// -accum-mode CLI values) into an AccumStrategy.
func ParseAccumStrategy(s string) (AccumStrategy, error) {
	return core.ParseAccumStrategy(s)
}

// DefaultPhmmBatch is the default lane width of the batched wavefront
// Pair-HMM kernel. Set via EngineConfig.PhmmBatch (0 selects this
// default; 1 or negative forces the scalar kernel).
const DefaultPhmmBatch = core.DefaultPhmmBatch

// Ploidy selects the LRT hypothesis family.
type Ploidy = lrt.Ploidy

// The ploidy models (paper Eq. 1 and Eq. 2).
const (
	Monoploid = lrt.Monoploid
	Diploid   = lrt.Diploid
)

// QualityEncoding selects the FASTQ quality encoding.
type QualityEncoding = fastq.Encoding

// The supported FASTQ quality encodings.
const (
	Sanger     = fastq.Sanger
	Illumina13 = fastq.Illumina13
)

// Options configures a Pipeline.
type Options struct {
	// Engine tunes mapping; zero value = paper defaults.
	Engine EngineConfig
	// Memory selects the accumulator layout (default MemNorm).
	Memory MemoryMode
	// Caller tunes SNP calling; zero value = monoploid, α = 0.05.
	Caller CallerConfig
	// Cluster tunes the fault model of simulated-cluster runs (op
	// deadlines, heartbeat failure detection, chaos injection). The
	// zero value keeps the historical block-forever behavior.
	Cluster ClusterConfig
	// Metrics, when non-nil, receives the pipeline's stage timers and
	// counters (mapping, Pair-HMM, calling). It applies to NewPipeline;
	// cluster runs instead build one registry per rank — use
	// RunClusterReport to get the aggregated result.
	Metrics *MetricsRegistry
	// Checkpoint, when non-nil, makes RunClusterStream write durable
	// checkpoints (and honor Resume/StopRequested). Only the streamed
	// ReadSplit path supports it; fault-tolerant (OpTimeout > 0) and
	// chaos runs are rejected — shard reassignment and checkpoint
	// watermarks cannot both own the replay story. Single-process
	// pipelines use Pipeline.MapReadsFromCheckpointed instead.
	Checkpoint *CheckpointConfig
}

// MetricsRegistry is a set of named counters, gauges, and latency
// histograms recording where a run spends its time (see internal/obs
// for the metric taxonomy). Registries are safe for concurrent use.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is one registry's point-in-time state, tagged with
// the rank that produced it.
type MetricsSnapshot = obs.Snapshot

// MetricsReport aggregates per-rank snapshots: each rank's snapshot,
// the ranks that died before reporting, and the merged totals.
type MetricsReport = obs.Report

// NewMetricsRegistry returns an empty registry for Options.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ProcessMetrics returns the process-wide registry, which collects
// rank-independent activity such as FASTA/FASTQ file I/O.
func ProcessMetrics() *MetricsRegistry { return obs.Default() }

// MetricsProcessRank tags a snapshot as process-wide (rank-independent)
// rather than belonging to a cluster rank.
const MetricsProcessRank = obs.ProcessRank

// NewMetricsReport merges per-scope snapshots into a report. Cluster
// runs get this done by RunClusterReport; single-process callers can
// assemble one from their registry's snapshot plus ProcessMetrics().
func NewMetricsReport(snaps []MetricsSnapshot, deadRanks []int) (*MetricsReport, error) {
	return obs.NewReport(snaps, deadRanks)
}

// ValidateMetricsJSON checks that data parses as a serialized
// MetricsReport with internally consistent merged totals.
func ValidateMetricsJSON(data []byte) error { return obs.ValidateReportJSON(data) }

// ClusterConfig is the fault model for RunCluster: operation deadlines,
// heartbeat failure detection, and optional deterministic fault
// injection.
type ClusterConfig struct {
	// OpTimeout bounds every cluster Send/Recv/collective; in read-split
	// mode it also switches to the fault-tolerant coordinator protocol
	// that reassigns a dead worker's read shard (0 = off).
	OpTimeout time.Duration
	// Heartbeat enables the failure detector at this period (0 = off).
	Heartbeat time.Duration
	// Fault, when non-nil, injects deterministic chaos (drops, dups,
	// delays, reorders, rank crashes) from a seeded RNG.
	Fault *FaultConfig
}

// FaultConfig parameterizes deterministic fault injection.
type FaultConfig = cluster.FaultConfig

// ParseChaosSpec parses a -chaos CLI spec like
// "seed=42,drop=0.02,dup=0.01,crash=2@100" into a FaultConfig.
func ParseChaosSpec(spec string) (FaultConfig, error) {
	return cluster.ParseFaultSpec(spec)
}

// Pipeline is a reference plus mapping and calling state: build one,
// feed it reads (possibly in several MapReads calls — accumulation is
// online), then Call.
type Pipeline struct {
	ref  *genome.Reference
	eng  *core.Engine
	acc  genome.Accumulator
	opts Options
	// cum/consumed track mapping outcomes across the pipeline's life
	// (all mapping calls plus any resumed checkpoint) — the counters
	// checkpoints persist so a resumed job's accounting stays honest.
	cum      MapStats
	consumed int64
}

// NewPipeline indexes the reference and allocates the accumulator.
func NewPipeline(reference []*Contig, opts Options) (*Pipeline, error) {
	if opts.Metrics != nil {
		if opts.Engine.Metrics == nil {
			opts.Engine.Metrics = opts.Metrics
		}
		if opts.Caller.Metrics == nil {
			opts.Caller.Metrics = opts.Metrics
		}
	}
	ref, err := genome.NewReference(reference)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ref, opts.Engine)
	if err != nil {
		return nil, err
	}
	acc, err := core.NewAccumulator(opts.Memory, ref.Len(), opts.Engine)
	if err != nil {
		return nil, err
	}
	return &Pipeline{ref: ref, eng: eng, acc: acc, opts: opts}, nil
}

// combined folds any outstanding per-worker shards into the base
// accumulator (a no-op for the striped layout) so read paths — calling,
// pileup, coverage, checkpointing — see the full accumulated mass
// without paying the sharded wrapper's per-position locking.
func (p *Pipeline) combined() (genome.Accumulator, error) {
	return core.CombineAccumulator(p.acc, p.opts.Engine.Metrics)
}

// noteRun folds one completed mapping run into the pipeline's
// cumulative accounting. Every read counts as exactly one of
// mapped/unmapped, so their sum is the number of reads consumed.
func (p *Pipeline) noteRun(st MapStats) {
	p.cum.Mapped += st.Mapped
	p.cum.Unmapped += st.Unmapped
	p.cum.Locations += st.Locations
	p.consumed += st.Mapped + st.Unmapped
}

// MapReads maps a batch of reads into the pipeline's accumulator using
// the shared-memory worker pool. It may be called repeatedly.
func (p *Pipeline) MapReads(reads []*Read) (MapStats, error) {
	st, err := p.eng.MapReads(reads, p.acc, 0)
	if err == nil {
		p.noteRun(st)
	}
	return st, err
}

// MapReadsFrom maps every read the source yields through the bounded
// streaming pipeline: resident memory is capped at
// (Engine.Queue + Engine.Workers) · Engine.Batch reads regardless of
// the input size, and the accumulated result is call-identical to
// MapReads over the materialized stream. It may be called repeatedly.
func (p *Pipeline) MapReadsFrom(src ReadSource) (MapStats, error) {
	st, err := p.eng.MapReadsFrom(src, p.acc, 0)
	if err == nil {
		p.noteRun(st)
	}
	return st, err
}

// Call runs the likelihood-ratio SNP caller over the accumulated state.
// With Caller.CallWorkers > 1 (or 0 on a multi-core host) the sweep is
// chunked across a worker pool; the result is bit-identical to the
// serial sweep because candidates concatenate in genome order before
// the single global significance pass.
func (p *Pipeline) Call() ([]SNPCall, CallStats, error) {
	acc, err := p.combined()
	if err != nil {
		return nil, CallStats{}, err
	}
	return snp.CallAll(p.ref, acc, p.opts.Caller)
}

// WriteVCF writes calls as VCF 4.2.
func (p *Pipeline) WriteVCF(w io.Writer, calls []SNPCall) error {
	return snp.WriteVCF(w, calls, "gnumap-snp")
}

// WriteSAM maps the reads again and writes each read's single best
// alignment as SAM (Viterbi path of the highest-posterior location).
// Note this is a separate pass: the accumulation pipeline marginalizes
// over alignments and does not retain per-read paths.
func (p *Pipeline) WriteSAM(w io.Writer, reads []*Read) error {
	return p.eng.WriteAlignments(w, reads, "gnumap-snp")
}

// WritePileup writes the per-position probability pileup as TSV for
// positions with at least minDepth accumulated mass.
func (p *Pipeline) WritePileup(w io.Writer, minDepth float64) error {
	acc, err := p.combined()
	if err != nil {
		return err
	}
	return snp.WritePileup(w, p.ref, acc, 0, 0, p.ref.Len(), minDepth)
}

// SaveState serializes the pipeline's accumulated per-position state
// so a long accumulation run can be checkpointed and resumed (or moved
// between machines). The bytes are a versioned, checksummed checkpoint
// (internal/ckpt) carrying the config fingerprint and cumulative
// mapping counters alongside the accumulator state.
func (p *Pipeline) SaveState(w io.Writer) error {
	acc, err := p.combined()
	if err != nil {
		return err
	}
	st, ok := acc.(genome.Stateful)
	if !ok {
		return fmt.Errorf("gnumap: memory mode %v is not serializable", acc.Mode())
	}
	data, err := st.State()
	if err != nil {
		return err
	}
	_, err = ckpt.WriteTo(w, &ckpt.Checkpoint{
		Fingerprint:   p.fingerprint(),
		ReadsConsumed: p.consumed,
		Mapped:        p.cum.Mapped,
		Unmapped:      p.cum.Unmapped,
		Locations:     p.cum.Locations,
		State:         data,
	})
	return err
}

// LoadState restores state saved by SaveState into a pipeline built
// with the same reference and memory mode, replacing any accumulation
// done so far. Further MapReads calls continue from the restored state.
// The declared payload length is validated against the reference size
// before allocation; damaged, legacy, or mismatched blobs surface as
// typed errors (ErrNotCheckpoint, ErrCheckpointTruncated,
// ErrCheckpointChecksum, ErrCheckpointMismatch, ...).
func (p *Pipeline) LoadState(r io.Reader) error {
	st, ok := p.acc.(genome.Stateful)
	if !ok {
		return fmt.Errorf("gnumap: memory mode %v is not serializable", p.acc.Mode())
	}
	cp, err := ckpt.ReadFrom(r, ckpt.MaxPayloadFor(p.ref.Len()))
	if err != nil {
		return fmt.Errorf("gnumap: load state: %w", err)
	}
	if err := p.fingerprint().Check(cp.Fingerprint); err != nil {
		return fmt.Errorf("gnumap: load state: %w", err)
	}
	if err := st.LoadStateBytes(cp.State); err != nil {
		return err
	}
	p.cum = MapStats{Mapped: cp.Mapped, Unmapped: cp.Unmapped, Locations: cp.Locations}
	p.consumed = cp.ReadsConsumed
	return nil
}

// ReferenceLength returns the total reference length.
func (p *Pipeline) ReferenceLength() int { return p.ref.Len() }

// AccumulatorMemoryBytes reports the accumulator footprint (the
// paper's Table II quantity).
func (p *Pipeline) AccumulatorMemoryBytes() int64 { return p.acc.MemoryBytes() }

// IndexMemoryBytes reports the k-mer index footprint.
func (p *Pipeline) IndexMemoryBytes() int64 { return p.eng.IndexMemoryBytes() }

// SeedIndex is a candidate-generating seed index (the direct k<=14
// table or the frequency-capped large-seed index). Pass one via
// Options.Engine.SeedIndex to skip the per-run index build.
type SeedIndex = kmer.SeedIndex

// LargeSeedIndex is the SNAP-style frequency-capped index for seed
// lengths above kmer.MaxDirectK; it is the only variant that persists
// to disk.
type LargeSeedIndex = kmer.LargeIndex

// SeedIndexInfo describes a persisted seed-index file's header.
type SeedIndexInfo = kmer.IndexInfo

// BuildSeedIndex builds a seed index of length seedLen over the
// concatenated reference: the direct table for seedLen <= 14, the
// large-seed index above.
func BuildSeedIndex(reference []*Contig, seedLen int) (SeedIndex, error) {
	ref, err := genome.NewReference(reference)
	if err != nil {
		return nil, err
	}
	return kmer.Build(ref.Seq(), seedLen)
}

// SaveSeedIndex atomically persists a large-seed index for the given
// reference; the file records the reference SHA-256 and length so
// OpenSeedIndex can refuse an index built for different data.
func SaveSeedIndex(path string, ix *LargeSeedIndex, reference []*Contig) (int64, error) {
	ref, err := genome.NewReference(reference)
	if err != nil {
		return 0, err
	}
	return kmer.WriteIndexFile(path, ix, ref.Digest(), int64(ref.Len()))
}

// OpenSeedIndex memory-maps a persisted seed index, pinning it to the
// given reference (kmer.ErrRefMismatch when the file was built for
// other data). Close the index after the last pipeline using it.
func OpenSeedIndex(path string, reference []*Contig) (*LargeSeedIndex, error) {
	ref, err := genome.NewReference(reference)
	if err != nil {
		return nil, err
	}
	return kmer.LoadIndexFile(path, kmer.LoadOptions{
		RefDigest: ref.Digest(), RefLen: int64(ref.Len()),
	})
}

// ReadSeedIndexInfo reads a persisted index's validated header without
// loading its sections.
func ReadSeedIndexInfo(path string) (SeedIndexInfo, error) {
	return kmer.ReadIndexInfo(path)
}

// PHMMParams is the Pair-HMM parameter set (transitions and the match
// emission matrix). Set Options.Engine.PHMM to override the defaults,
// e.g. with parameters fitted by FitPHMM.
type PHMMParams = phmm.Params

// DefaultPHMMParams returns the paper-default parameter set.
func DefaultPHMMParams() PHMMParams { return phmm.DefaultParams() }

// FitPHMM estimates Pair-HMM parameters from the data itself: it maps
// the given reads, keeps confidently uniquely mapped ones as training
// alignments, and runs Baum-Welch (EM) from the default parameters.
// maxPairs bounds the training set (0 = all confident reads; a few
// hundred suffice). The fitted parameters plug into
// Options.Engine.PHMM for a subsequent mapping pipeline.
func FitPHMM(reference []*Contig, reads []*Read, maxPairs int) (PHMMParams, error) {
	ref, err := genome.NewReference(reference)
	if err != nil {
		return PHMMParams{}, err
	}
	eng, err := core.NewEngine(ref, core.Config{})
	if err != nil {
		return PHMMParams{}, err
	}
	pairs, err := eng.CollectTrainingPairs(reads, maxPairs, 0.99)
	if err != nil {
		return PHMMParams{}, err
	}
	res, err := phmm.Fit(pairs, phmm.DefaultParams(), phmm.TrainOptions{})
	if err != nil {
		return PHMMParams{}, err
	}
	return res.Params, nil
}

// ReadStats summarizes a read set (see internal/qc).
type ReadStats = qc.ReadStats

// CoverageStats summarizes accumulated mapping depth (see internal/qc).
type CoverageStats = qc.CoverageStats

// SummarizeReads computes QC statistics for a read set.
func SummarizeReads(reads []*Read) ReadStats {
	return qc.SummarizeReads(reads)
}

// CoverageStats summarizes the pipeline's accumulated depth after
// MapReads.
func (p *Pipeline) CoverageStats() CoverageStats {
	acc, err := p.combined()
	if err != nil {
		// Combine only fails on layout mismatches a Pipeline cannot
		// produce; fall back to the lazily-combining wrapper.
		acc = p.acc
	}
	return qc.SummarizeCoverage(acc, 64)
}

// Allele is a called base channel (A, C, G, T, or gap).
type Allele = dna.Channel

// AlleleOf converts a truth SNP's base code to the channel type used
// by SNPCall, for comparing calls against planted alleles.
func AlleleOf(base dna.Code) Allele { return dna.Channel(base) }

// Evaluate scores calls against a planted truth set.
func Evaluate(calls []SNPCall, truth []TruthSNP) Metrics {
	return snp.Evaluate(calls, truth)
}

// LoadReference reads a FASTA reference file.
func LoadReference(path string) ([]*Contig, error) {
	return fasta.ReadFile(path)
}

// LoadReads reads a FASTQ file.
func LoadReads(path string, enc QualityEncoding) ([]*Read, error) {
	return fastq.ReadFile(path, enc)
}

// ReadSource yields reads one at a time until io.EOF — the streaming
// input of MapReadsFrom and RunClusterStream.
type ReadSource = fastq.Source

// ReadStream is a streaming FASTQ file handle (a ReadSource plus
// Close; .gz transparent). Close publishes streamed volume to
// ProcessMetrics.
type ReadStream = fastq.File

// OpenReads opens a FASTQ file (or .gz) for streaming instead of
// materializing it. The caller must Close it.
func OpenReads(path string, enc QualityEncoding) (*ReadStream, error) {
	return fastq.Open(path, enc)
}

// SliceReadSource adapts an in-memory read slice to a ReadSource.
func SliceReadSource(reads []*Read) ReadSource {
	return fastq.SliceSource(reads)
}

// WriteReference writes contigs as FASTA.
func WriteReference(path string, contigs []*Contig) error {
	return fasta.WriteFile(path, contigs)
}

// WriteReads writes reads as FASTQ.
func WriteReads(path string, reads []*Read, enc QualityEncoding) error {
	return fastq.WriteFile(path, reads, enc)
}

// SimConfig configures SimulateDataset.
type SimConfig struct {
	// GenomeLength is the reference length (required).
	GenomeLength int
	// GC is the target GC content (default 0.41).
	GC float64
	// TandemRepeatFraction / DispersedRepeatFraction plant repeat
	// structure (default none).
	TandemRepeatFraction    float64
	DispersedRepeatFraction float64
	// SNPCount plants this many evenly spaced SNPs (required).
	SNPCount int
	// HetFraction makes this share of SNPs heterozygous; non-zero
	// implies a diploid individual.
	HetFraction float64
	// ReadLength (default 62, the paper's) and Coverage (default 12)
	// control sequencing.
	ReadLength int
	Coverage   float64
	// ErrStart/ErrEnd set the Illumina-like error ramp (defaults
	// 0.002 → 0.02).
	ErrStart, ErrEnd float64
	// Seed drives all randomness.
	Seed int64
}

// Dataset is a complete simulated experiment.
type Dataset struct {
	// Reference is the unmutated reference the mapper sees.
	Reference []*Contig
	// Truth is the planted SNP catalog (positions are global, which
	// for the single simulated contig equals contig-relative).
	Truth []TruthSNP
	// Reads are sequenced from the mutated individual.
	Reads []*Read
}

// SimulateDataset builds a reference, plants SNPs, and sequences reads
// from the mutated individual — the reproduction's stand-in for the
// paper's hg19-chrX + dbSNP + MetaSim setup.
func SimulateDataset(cfg SimConfig) (*Dataset, error) {
	g, err := simulate.Genome(simulate.GenomeConfig{
		Length:                  cfg.GenomeLength,
		GC:                      cfg.GC,
		TandemRepeatFraction:    cfg.TandemRepeatFraction,
		DispersedRepeatFraction: cfg.DispersedRepeatFraction,
		Seed:                    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	cat, err := simulate.Catalog(g, simulate.CatalogConfig{
		Count:       cfg.SNPCount,
		HetFraction: cfg.HetFraction,
		Seed:        cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	ind, err := simulate.Mutate(g, cat, cfg.HetFraction > 0)
	if err != nil {
		return nil, err
	}
	readLen := cfg.ReadLength
	if readLen == 0 {
		readLen = 62
	}
	coverage := cfg.Coverage
	if coverage == 0 {
		coverage = 12
	}
	reads, err := simulate.Reads(ind, simulate.ReadConfig{
		Length:   readLen,
		Coverage: coverage,
		ErrStart: cfg.ErrStart,
		ErrEnd:   cfg.ErrEnd,
		Seed:     cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Reference: []*Contig{{Name: "sim", Seq: g}},
		Truth:     cat,
		Reads:     reads,
	}, nil
}

// BaselineConfig tunes the comparator pipelines (see
// internal/baseline.Config; zero value = MAQ-flavoured defaults).
type BaselineConfig = baseline.Config

// BaselineResult is the comparator outcome.
type BaselineResult = baseline.Result

// The baseline consensus models.
const (
	MAQConsensus  = baseline.MAQConsensus
	SoapConsensus = baseline.SoapConsensus
)

// RunBaseline maps reads and calls SNPs with the comparator pipeline
// (MAQ-like by default; set Consensus to SoapConsensus for the Bayesian
// genotype caller). This is the paper's Table I comparison system,
// exposed so downstream users can reproduce the contrast.
func RunBaseline(reference []*Contig, reads []*Read, cfg BaselineConfig) (*BaselineResult, error) {
	ref, err := genome.NewReference(reference)
	if err != nil {
		return nil, err
	}
	return baseline.Run(ref, reads, cfg)
}

// SimulateGenome generates just a reference (no SNPs, no reads) for
// hand-constructed scenarios — e.g. planting an exact duplication
// before sequencing. Only GenomeLength, GC, repeat fractions, and Seed
// of the config are used.
func SimulateGenome(cfg SimConfig) ([]*Contig, error) {
	g, err := simulate.Genome(simulate.GenomeConfig{
		Length:                  cfg.GenomeLength,
		GC:                      cfg.GC,
		TandemRepeatFraction:    cfg.TandemRepeatFraction,
		DispersedRepeatFraction: cfg.DispersedRepeatFraction,
		Seed:                    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return []*Contig{{Name: "sim", Seq: g}}, nil
}

// PlantSNPs builds a truth catalog at explicit positions of the
// reference's first contig, with transition-biased alternate alleles.
func PlantSNPs(reference []*Contig, positions []int, seed int64) ([]TruthSNP, error) {
	if len(reference) == 0 {
		return nil, fmt.Errorf("gnumap: empty reference")
	}
	return simulate.CatalogAt(reference[0].Seq, positions, simulate.CatalogConfig{Seed: seed})
}

// SimulateReadsFrom sequences an individual carrying the given truth
// SNPs on the reference's first contig, using the read parameters of
// cfg (ReadLength, Coverage, ErrStart/ErrEnd, HetFraction>0 implies a
// diploid individual, Seed).
func SimulateReadsFrom(reference []*Contig, truth []TruthSNP, cfg SimConfig) ([]*Read, error) {
	if len(reference) == 0 {
		return nil, fmt.Errorf("gnumap: empty reference")
	}
	diploid := false
	for _, s := range truth {
		if s.Het {
			diploid = true
		}
	}
	ind, err := simulate.Mutate(reference[0].Seq, truth, diploid)
	if err != nil {
		return nil, err
	}
	readLen := cfg.ReadLength
	if readLen == 0 {
		readLen = 62
	}
	coverage := cfg.Coverage
	if coverage == 0 {
		coverage = 12
	}
	return simulate.Reads(ind, simulate.ReadConfig{
		Length:   readLen,
		Coverage: coverage,
		ErrStart: cfg.ErrStart,
		ErrEnd:   cfg.ErrEnd,
		Seed:     cfg.Seed + 2,
	})
}

// Transport selects the simulated-cluster transport.
type Transport = cluster.TransportKind

// The cluster transports.
const (
	Channels = cluster.Channels
	TCP      = cluster.TCP
)

// SplitMode selects the distributed parallelization strategy.
type SplitMode int

// The paper's two MPI modes (§VI Step 1).
const (
	// ReadSplit replicates the genome on every node and partitions the
	// reads ("shared memory" series of Figure 4).
	ReadSplit SplitMode = iota
	// GenomeSplit partitions the genome and shows every node all reads
	// ("spread memory" series of Figure 4).
	GenomeSplit
)

// String names the split mode.
func (m SplitMode) String() string {
	switch m {
	case ReadSplit:
		return "read-split"
	case GenomeSplit:
		return "genome-split"
	default:
		return fmt.Sprintf("SplitMode(%d)", int(m))
	}
}

// RunCluster maps reads and calls SNPs on a simulated cluster of the
// given size, returning the calls and global mapping statistics. In
// ReadSplit mode the reduction happens at rank 0, which also calls
// SNPs; in GenomeSplit mode every rank calls SNPs on its genome slice
// and the calls are gathered — except under FDR control, where the
// per-position LRT candidates are gathered to rank 0 and the
// Benjamini-Hochberg pass runs once over the global candidate list
// (BH thresholds depend on the full ranked p-value list, so running it
// per shard changes the call set with the node count). Either way the
// result is equivalent to a single-process run.
func RunCluster(nodes int, transport Transport, mode SplitMode,
	reference []*Contig, reads []*Read, opts Options) ([]SNPCall, MapStats, error) {

	calls, stats, _, err := runCluster(nodes, transport, mode, reference, reads, nil, opts, false)
	return calls, stats, err
}

// RunClusterStream is RunCluster with the reads streamed rather than
// replicated: rank 0 owns the source and deals fixed-size batches
// round-robin to the ranks under a bounded credit window, so
// cluster-wide resident reads stay capped by Engine.{Batch,Queue,
// Workers} while the call set matches the materialized run. Modes that
// need the full read slice on every rank fall back transparently by
// materializing the source first: GenomeSplit (every rank maps all
// reads) and fault-tolerant runs (OpTimeout > 0 reassigns whole shards,
// which a stream cannot replay).
func RunClusterStream(nodes int, transport Transport, mode SplitMode,
	reference []*Contig, src ReadSource, opts Options) ([]SNPCall, MapStats, error) {

	calls, stats, _, err := runClusterStream(nodes, transport, mode, reference, src, opts, false)
	return calls, stats, err
}

// RunClusterStreamReport is RunClusterStream with the per-rank
// observability of RunClusterReport.
func RunClusterStreamReport(nodes int, transport Transport, mode SplitMode,
	reference []*Contig, src ReadSource, opts Options) ([]SNPCall, MapStats, *MetricsReport, error) {

	return runClusterStream(nodes, transport, mode, reference, src, opts, true)
}

func runClusterStream(nodes int, transport Transport, mode SplitMode,
	reference []*Contig, src ReadSource, opts Options, withMetrics bool) ([]SNPCall, MapStats, *MetricsReport, error) {

	if opts.Checkpoint != nil {
		// Checkpoint watermarks count reads dealt from the stream; the
		// materialized fallbacks below (and fault-tolerant shard
		// reassignment) have no stream to watermark, so reject rather
		// than silently run without durability.
		if mode != ReadSplit {
			return nil, MapStats{}, nil, fmt.Errorf("gnumap: checkpointing requires read-split mode, not %v", mode)
		}
		if opts.Cluster.OpTimeout > 0 || opts.Cluster.Fault != nil {
			return nil, MapStats{}, nil, fmt.Errorf("gnumap: checkpointing is incompatible with fault-tolerant and chaos cluster runs")
		}
	}
	if mode != ReadSplit || opts.Cluster.OpTimeout > 0 {
		reads, err := materializeReads(src)
		if err != nil {
			return nil, MapStats{}, nil, err
		}
		return runCluster(nodes, transport, mode, reference, reads, nil, opts, withMetrics)
	}
	return runCluster(nodes, transport, mode, reference, nil, src, opts, withMetrics)
}

// materializeReads drains a source into a slice (the fallback for
// cluster modes that need random access to every read).
func materializeReads(src ReadSource) ([]*Read, error) {
	var reads []*Read
	for {
		rd, err := src.Next()
		if errors.Is(err, io.EOF) {
			return reads, nil
		}
		if err != nil {
			return nil, err
		}
		reads = append(reads, rd)
	}
}

// RunClusterReport is RunCluster with per-rank observability: every
// rank records its mapping, calling, and communication activity into
// its own registry; at the end the snapshots are gathered at rank 0
// (tolerating dead ranks on fault-tolerant runs) and merged into a
// MetricsReport alongside the process-wide I/O metrics.
func RunClusterReport(nodes int, transport Transport, mode SplitMode,
	reference []*Contig, reads []*Read, opts Options) ([]SNPCall, MapStats, *MetricsReport, error) {

	return runCluster(nodes, transport, mode, reference, reads, nil, opts, true)
}

// runCluster executes a cluster run. Exactly one of reads and src is
// set: a non-nil src selects the streaming read-split path, with rank 0
// owning the source.
func runCluster(nodes int, transport Transport, mode SplitMode,
	reference []*Contig, reads []*Read, src ReadSource, opts Options, withMetrics bool) ([]SNPCall, MapStats, *MetricsReport, error) {

	ref, err := genome.NewReference(reference)
	if err != nil {
		return nil, MapStats{}, nil, err
	}
	var ckr *clusterCkpt
	if src != nil && opts.Checkpoint != nil {
		ckr, err = prepareClusterCkpt(ref, src, opts)
		if err != nil {
			return nil, MapStats{}, nil, err
		}
	}
	var calls []SNPCall
	var stats MapStats
	collect := make([][]SNPCall, nodes)
	statsCh := make(chan MapStats, nodes)
	// Written only by rank 0's node goroutine; read after RunWithConfig
	// returns (which waits all goroutines out).
	var gotSnaps []MetricsSnapshot
	var gotDead []int

	runCfg := cluster.RunConfig{
		Kind:      transport,
		OpTimeout: opts.Cluster.OpTimeout,
		Heartbeat: opts.Cluster.Heartbeat,
		Fault:     opts.Cluster.Fault,
	}
	err = cluster.RunWithConfig(nodes, runCfg, func(c *cluster.Comm) error {
		nodeOpts := opts
		var reg *obs.Registry
		if withMetrics {
			reg = obs.NewRegistry()
			nodeOpts.Engine.Metrics = reg
			nodeOpts.Caller.Metrics = reg
			c.SetMetrics(reg)
		}
		if err := runClusterNode(c, mode, ref, reads, src, nodeOpts, ckr, collect, statsCh); err != nil {
			return err
		}
		if withMetrics {
			c.PublishStats()
			snaps, dead, err := core.GatherMetrics(c, reg.Snapshot(c.Rank()))
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				gotSnaps, gotDead = snaps, dead
			}
		}
		return nil
	})
	if err != nil {
		return nil, MapStats{}, nil, err
	}
	close(statsCh)
	for st := range statsCh {
		stats = st
	}
	for _, cs := range collect {
		calls = append(calls, cs...)
	}
	var report *MetricsReport
	if withMetrics {
		// Rank-independent activity (file I/O) rides along as a
		// ProcessRank snapshot when there is any.
		ioSnap := obs.Default().Snapshot(obs.ProcessRank)
		if len(ioSnap.Counters)+len(ioSnap.Gauges)+len(ioSnap.Histograms) > 0 {
			gotSnaps = append(gotSnaps, ioSnap)
		}
		report, err = obs.NewReport(gotSnaps, unionInts(gotDead, stats.LostRanks))
		if err != nil {
			return nil, MapStats{}, nil, err
		}
	}
	return calls, stats, report, nil
}

// runClusterNode is one rank's work: map, then call (or collect LRT
// candidates for the global FDR pass).
func runClusterNode(c *cluster.Comm, mode SplitMode, ref *genome.Reference,
	reads []*Read, src ReadSource, opts Options, ckr *clusterCkpt, collect [][]SNPCall, statsCh chan MapStats) error {

	switch mode {
	case ReadSplit:
		var acc genome.Accumulator
		var st MapStats
		var err error
		if src != nil {
			var ck *core.StreamCkpt
			var cw *ckptCommitter
			if c.Rank() != 0 {
				src = nil // only rank 0 owns the stream
			} else {
				ck, cw = streamCkptFor(ckr, opts.Engine.Metrics)
			}
			acc, st, err = core.RunReadSplitStreamCkpt(c, ref, src, opts.Memory, opts.Engine, ck)
			if cw != nil {
				if ferr := cw.Flush(); ferr != nil && (err == nil || errors.Is(err, ErrStopped)) {
					err = fmt.Errorf("gnumap: checkpoint commit: %w", ferr)
				}
			}
		} else {
			acc, st, err = core.RunReadSplit(c, ref, reads, opts.Memory, opts.Engine)
		}
		if err != nil {
			// ErrStopped propagates: the final checkpoint is on disk and
			// the caller decides whether to call on partial state.
			return err
		}
		if c.Rank() == 0 {
			if ckr != nil {
				// Fold the resumed base back in so the reported totals
				// cover the whole job, not just this invocation.
				st.Mapped += ckr.base.Mapped
				st.Unmapped += ckr.base.Unmapped
				st.Locations += ckr.base.Locations
			}
			statsCh <- st
			cs, _, err := snp.CallAll(ref, acc, opts.Caller)
			if err != nil {
				return err
			}
			collect[0] = cs
		}
		return nil
	case GenomeSplit:
		acc, lo, hi, st, err := core.RunGenomeSplit(c, ref, reads, opts.Memory, opts.Engine)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			statsCh <- st
		}
		if opts.Caller.UseFDR {
			// The Benjamini-Hochberg threshold for each hypothesis
			// depends on the rank of its p-value in the FULL sorted list.
			// Running CallRange per shard applied BH with shard-local
			// lists and shard-local n, so genome-split call sets diverged
			// from single-process runs. Gather the candidates and apply
			// one global BH pass at rank 0 instead.
			cands, _, err := snp.CollectRangeParallel(ref, acc, lo, lo, hi, opts.Caller)
			if err != nil {
				return err
			}
			all, err := c.Gather(0, cands)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				var merged []snp.Candidate
				for r, v := range all {
					part, ok := v.([]snp.Candidate)
					if !ok {
						return fmt.Errorf("gnumap: rank %d sent candidate payload %T", r, v)
					}
					merged = append(merged, part...)
				}
				cs, _, err := snp.FinalizeCalls(merged, opts.Caller)
				if err != nil {
					return err
				}
				collect[0] = cs
			}
			return nil
		}
		cs, _, err := snp.CallRange(ref, acc, lo, lo, hi, opts.Caller)
		if err != nil {
			return err
		}
		collect[c.Rank()] = cs
		return nil
	default:
		return fmt.Errorf("gnumap: unknown split mode %d", int(mode))
	}
}

// unionInts merges two int lists (duplicates removed; order left to
// the consumer, which sorts).
func unionInts(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, xs := range [2][]int{a, b} {
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}
