package gnumap

// Crash-safe checkpoint/resume (DESIGN.md §13). A long mapping run
// periodically quiesces its streaming pipeline and writes a durable
// checkpoint — config fingerprint, source watermark, mapping stats,
// accumulator state — atomically to one file. A resumed run loads the
// checkpoint (fingerprint-checked), skips the already-mapped prefix of
// the reopened source, and continues; the final calls match an
// uninterrupted run.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"gnumap/internal/ckpt"
	"gnumap/internal/core"
	"gnumap/internal/genome"
)

// ErrStopped reports a cooperative stop: the pipeline drained, the
// final checkpoint was written, and the run ended early by request
// (typically SIGINT/SIGTERM) rather than by error or end of input.
var ErrStopped = core.ErrStopped

// Typed checkpoint failure modes, re-exported for errors.Is. Every
// decode failure wraps exactly one of these.
var (
	// ErrNotCheckpoint: the file does not start with the checkpoint magic
	// (e.g. a legacy raw-state blob, or not a checkpoint at all).
	ErrNotCheckpoint = ckpt.ErrNotCheckpoint
	// ErrCheckpointVersion: written by a format version this build
	// does not read.
	ErrCheckpointVersion = ckpt.ErrVersion
	// ErrCheckpointTruncated: the file ends before a declared section.
	ErrCheckpointTruncated = ckpt.ErrTruncated
	// ErrCheckpointChecksum: a section's CRC does not match.
	ErrCheckpointChecksum = ckpt.ErrChecksum
	// ErrCheckpointTooLarge: a declared length exceeds the bound implied
	// by the reference.
	ErrCheckpointTooLarge = ckpt.ErrTooLarge
	// ErrCheckpointMismatch: the checkpoint belongs to a run with
	// different call-affecting configuration (reference, memory mode,
	// band, ploidy, parameters).
	ErrCheckpointMismatch = ckpt.ErrMismatch
)

// CheckpointConfig configures durable checkpointing of a streamed
// mapping run (Pipeline.MapReadsFromCheckpointed, or RunClusterStream
// in ReadSplit mode via Options.Checkpoint).
type CheckpointConfig struct {
	// Path is the checkpoint file. Every write atomically replaces it
	// (temp file + fsync + rename), so a crash at any instant leaves
	// either the previous or the new complete checkpoint.
	Path string
	// EveryReads triggers a checkpoint each time this many reads have
	// been consumed since the last one (0 = no read-count trigger).
	EveryReads int64
	// Every triggers a checkpoint when this much wall time has passed
	// since the last one (0 = no time trigger).
	Every time.Duration
	// Resume (cluster path only): load Path before mapping, skip the
	// watermark prefix of the source, and continue from the saved
	// state. A missing file is a fresh start, not an error, so a
	// supervisor can pass the same flags on every (re)invocation.
	// Single-process callers use Pipeline.ResumeCheckpoint instead.
	Resume bool
	// StopRequested, when non-nil, is polled between batches; returning
	// true drains the pipeline, writes a final checkpoint, and makes
	// the run return ErrStopped. Wire a signal handler here for
	// graceful shutdown.
	StopRequested func() bool
}

// fingerprint pins checkpoints to this pipeline's call-affecting
// configuration.
func (p *Pipeline) fingerprint() ckpt.Fingerprint {
	return fingerprintFor(p.ref, p.opts)
}

// fingerprintFor renders the call-affecting configuration — and only
// that; execution knobs (workers, batch, queue, accumulation strategy,
// PHMM lane width) may change freely across a resume — into a
// checkpoint fingerprint. Both configs are resolved first so a zero
// value and its explicit default fingerprint identically.
func fingerprintFor(ref *genome.Reference, opts Options) ckpt.Fingerprint {
	ec := opts.Engine.Resolved()
	cc := opts.Caller.Resolved()
	canonical := fmt.Sprintf(
		"phmm=%+v align=%v k=%d pad=%d attr=%v maxCand=%d minSeedVotes=%d minVoteFrac=%v maxBucket=%d minPosterior=%v minLocLogLik=%v viterbi=%t noQual=%t bestHit=%t alpha=%v fdr=%t minDepth=%v minHetMinor=%v",
		ec.PHMM, ec.AlignMode, ec.K, ec.Pad, ec.Attribution,
		ec.MaxCandidates, ec.MinSeedVotes, ec.MinVoteFraction,
		ec.MaxBucket, ec.MinPosterior, ec.MinLocLogLik,
		ec.ViterbiOnly, ec.IgnoreQualities, ec.BestHitOnly,
		cc.Alpha, cc.UseFDR, cc.MinDepth, cc.MinHetMinorFraction)
	return ckpt.Fingerprint{
		RefDigest:    ref.Digest(),
		RefLen:       int64(ref.Len()),
		Memory:       int32(opts.Memory),
		Band:         int32(opts.Engine.EffectiveBand()),
		Ploidy:       int32(cc.Ploidy),
		ParamsDigest: ckpt.DigestParams(canonical),
	}
}

// ckptCommitter is the streaming pipeline's checkpoint sink, with the
// durable part taken off the critical path: sink runs while the
// pipeline is quiesced, folds the run-local counters onto the resumed
// base, and hands the snapshot to a background goroutine for the
// temp-file write + fsync + rename. The pipeline stalls only for the
// state snapshot itself, and at most one commit is ever in flight —
// sink first waits out the previous commit (surfacing its error, which
// aborts the run), so commits land in order and a crash at any instant
// still leaves either the previous or the new complete checkpoint on
// disk. Flush must run after the mapping call returns; until it does,
// the newest checkpoint may not be durable yet.
type ckptCommitter struct {
	path string
	fp   ckpt.Fingerprint
	base ckpt.Checkpoint
	reg  *MetricsRegistry

	// pending holds the in-flight commit's result; a nil placeholder
	// means no commit is in flight.
	pending chan error
}

func newCkptCommitter(path string, fp ckpt.Fingerprint, base ckpt.Checkpoint, reg *MetricsRegistry) *ckptCommitter {
	c := &ckptCommitter{path: path, fp: fp, base: base, reg: reg, pending: make(chan error, 1)}
	c.pending <- nil
	return c
}

// sink is the core.CheckpointPolicy Sink. The state slice is a private
// snapshot (genome.SnapshotState allocates), so retaining it past the
// quiesce window is safe.
func (c *ckptCommitter) sink(consumed int64, st core.Stats, state []byte) error {
	if err := <-c.pending; err != nil {
		c.pending <- err // keep Flush deterministic after an abort
		return err
	}
	cp := &ckpt.Checkpoint{
		Fingerprint:   c.fp,
		ReadsConsumed: c.base.ReadsConsumed + consumed,
		Mapped:        c.base.Mapped + st.Mapped,
		Unmapped:      c.base.Unmapped + st.Unmapped,
		Locations:     c.base.Locations + st.Locations,
		State:         state,
	}
	go func() {
		start := time.Now()
		n, err := ckpt.WriteFile(c.path, cp)
		if err == nil && c.reg != nil {
			c.reg.Counter("ckpt.writes").Inc()
			c.reg.Counter("ckpt.bytes").Add(n)
			c.reg.Timer("ckpt.write.seconds").ObserveDuration(time.Since(start))
		}
		c.pending <- err
	}()
	return nil
}

// Flush waits for the in-flight commit (if any) to reach disk and
// returns its error. Safe to call more than once.
func (c *ckptCommitter) Flush() error {
	err := <-c.pending
	c.pending <- err
	return err
}

// MapReadsFromCheckpointed is MapReadsFrom with durable checkpoints:
// every cc.EveryReads reads / cc.Every wall time the pipeline quiesces
// and writes its full state to cc.Path. Counters in the checkpoint are
// cumulative across the pipeline's life (including a prior
// ResumeCheckpoint), so the watermark is always "reads consumed since
// the original start of the job". Returns ErrStopped (with a final
// checkpoint written) when cc.StopRequested fires.
func (p *Pipeline) MapReadsFromCheckpointed(src ReadSource, cc CheckpointConfig) (MapStats, error) {
	if cc.Path == "" {
		return MapStats{}, fmt.Errorf("gnumap: checkpoint path required")
	}
	cw := newCkptCommitter(cc.Path, p.fingerprint(), ckpt.Checkpoint{
		ReadsConsumed: p.consumed,
		Mapped:        p.cum.Mapped,
		Unmapped:      p.cum.Unmapped,
		Locations:     p.cum.Locations,
	}, p.opts.Engine.Metrics)
	pol := &core.CheckpointPolicy{
		EveryReads:    cc.EveryReads,
		Every:         cc.Every,
		StopRequested: cc.StopRequested,
		Sink:          cw.sink,
	}
	st, err := p.eng.MapReadsFromCkpt(src, p.acc, 0, pol)
	ferr := cw.Flush() // the newest checkpoint must be durable before we return
	if err != nil && !errors.Is(err, ErrStopped) {
		return st, err
	}
	if ferr != nil {
		return st, fmt.Errorf("gnumap: checkpoint commit: %w", ferr)
	}
	p.noteRun(st)
	return st, err
}

// ResumeCheckpoint loads the checkpoint at path into the pipeline —
// fingerprint-checked, accumulator state restored, cumulative counters
// adopted — and returns the source watermark: the number of reads the
// caller must skip from the reopened source (see SkipReads) before the
// next MapReadsFromCheckpointed call.
func (p *Pipeline) ResumeCheckpoint(path string) (int64, error) {
	cp, err := ckpt.ReadFile(path, ckpt.MaxPayloadFor(p.ref.Len()))
	if err != nil {
		return 0, err
	}
	if err := p.fingerprint().Check(cp.Fingerprint); err != nil {
		return 0, fmt.Errorf("gnumap: resume %s: %w", path, err)
	}
	st, ok := p.acc.(genome.Stateful)
	if !ok {
		return 0, fmt.Errorf("gnumap: memory mode %v is not serializable", p.acc.Mode())
	}
	if err := st.LoadStateBytes(cp.State); err != nil {
		return 0, fmt.Errorf("gnumap: resume %s: %w", path, err)
	}
	p.cum = MapStats{Mapped: cp.Mapped, Unmapped: cp.Unmapped, Locations: cp.Locations}
	p.consumed = cp.ReadsConsumed
	return cp.ReadsConsumed, nil
}

// SkipReads discards the first n reads of src — the already-mapped
// prefix named by a resume watermark. The source ending before n reads
// is an error: the input shrank since the checkpoint was taken.
func (p *Pipeline) SkipReads(src ReadSource, n int64) error {
	for i := int64(0); i < n; i++ {
		if _, err := src.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("gnumap: source ended after %d of %d watermark reads; input changed since checkpoint", i, n)
			}
			return err
		}
	}
	if reg := p.opts.Engine.Metrics; reg != nil && n > 0 {
		reg.Counter("ckpt.resume.reads.skipped").Add(n)
	}
	return nil
}

// ReadsConsumed returns the cumulative source watermark: reads mapped
// by this pipeline plus any prefix adopted from a resumed checkpoint.
func (p *Pipeline) ReadsConsumed() int64 { return p.consumed }

// CumulativeStats returns the mapping statistics accumulated across
// every mapping call of the pipeline's life, including counts adopted
// from a resumed checkpoint (per-call MapStats cover only their call).
func (p *Pipeline) CumulativeStats() MapStats { return p.cum }

// clusterCkpt carries a validated checkpoint setup into the cluster
// node function: the config, the precomputed fingerprint, and — when
// resuming — the loaded base checkpoint whose counters offset every
// sink write and whose state preloads rank 0's accumulator.
type clusterCkpt struct {
	cfg  CheckpointConfig
	fp   ckpt.Fingerprint
	base ckpt.Checkpoint
}

// prepareClusterCkpt validates Options.Checkpoint for a streamed
// read-split run and, on Resume, loads the checkpoint and skips the
// watermark prefix of src (rank 0 owns the source, so this happens
// once, driver-side). A missing file under Resume is a fresh start.
func prepareClusterCkpt(ref *genome.Reference, src ReadSource, opts Options) (*clusterCkpt, error) {
	cc := *opts.Checkpoint
	if cc.Path == "" {
		return nil, fmt.Errorf("gnumap: checkpoint path required")
	}
	ckr := &clusterCkpt{cfg: cc, fp: fingerprintFor(ref, opts)}
	if !cc.Resume {
		return ckr, nil
	}
	cp, err := ckpt.ReadFile(cc.Path, ckpt.MaxPayloadFor(ref.Len()))
	if errors.Is(err, os.ErrNotExist) {
		return ckr, nil
	}
	if err != nil {
		return nil, err
	}
	if err := ckr.fp.Check(cp.Fingerprint); err != nil {
		return nil, fmt.Errorf("gnumap: resume %s: %w", cc.Path, err)
	}
	for i := int64(0); i < cp.ReadsConsumed; i++ {
		if _, err := src.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("gnumap: source ended after %d of %d watermark reads; input changed since checkpoint", i, cp.ReadsConsumed)
			}
			return nil, err
		}
	}
	if cp.ReadsConsumed > 0 {
		ProcessMetrics().Counter("ckpt.resume.reads.skipped").Add(cp.ReadsConsumed)
	}
	ckr.base = *cp
	return ckr, nil
}

// streamCkptFor builds rank 0's core.StreamCkpt from the prepared
// cluster checkpoint setup, plus the committer the caller must Flush
// after the run (nil for other ranks and runs without checkpointing).
func streamCkptFor(ckr *clusterCkpt, reg *MetricsRegistry) (*core.StreamCkpt, *ckptCommitter) {
	if ckr == nil {
		return nil, nil
	}
	cw := newCkptCommitter(ckr.cfg.Path, ckr.fp, ckr.base, reg)
	return &core.StreamCkpt{
		EveryReads:    ckr.cfg.EveryReads,
		Every:         ckr.cfg.Every,
		StopRequested: ckr.cfg.StopRequested,
		ResumeState:   ckr.base.State,
		Sink:          cw.sink,
	}, cw
}
